package synth

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/graph"
)

// FinancialOptions configures the Financial-shaped dataset (paper
// Table 4: 8 tables, classification, no missing data, 17% string
// columns), mirroring the PKDD'99 loan-default task. The paper's copy
// has ~1M rows; the default scale here generates ~60K so the full
// benchmark suite stays laptop-sized — raise Scale to approach the
// published volume.
type FinancialOptions struct {
	Scale float64
	Seed  int64
}

// Financial generates the 8-table database: loan (base), account,
// district, trans, order, client, disp, card. Default risk is driven by
// the account's transaction balances and the district's unemployment —
// signal that is two FK hops away from the base table.
func Financial(opts FinancialOptions) *Spec {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	numDistricts := scaleCount(77, opts.Scale, 10)
	numAccounts := scaleCount(4500, opts.Scale, 100)
	numLoans := scaleCount(2000, opts.Scale, 80)
	transPerAccount := 10
	numClients := numAccounts

	regions := vocab("region", 8)
	frequencies := []string{"monthly", "weekly", "after_tx"}
	transTypes := []string{"credit", "withdrawal", "transfer"}
	orderSymbols := []string{"insurance", "household", "leasing", "loan_pay"}
	cardTypes := []string{"classic", "junior", "gold"}
	dispTypes := []string{"owner", "disponent"}

	district := dataset.NewTable("district", "district_id", "region", "avg_salary", "unemployment")
	district.SetKeys("district_id")
	unemployment := make([]float64, numDistricts)
	for d := 0; d < numDistricts; d++ {
		unemployment[d] = absf(gauss(rng, 5, 3))
		district.AppendRow(
			dataset.Int(1000+(d)),
			dataset.String(pick(regions, rng)),
			dataset.Number(absf(gauss(rng, 9000, 1500))),
			dataset.Number(unemployment[d]),
		)
	}

	account := dataset.NewTable("account", "account_id", "district_id", "frequency", "open_year")
	account.SetKeys("account_id")
	account.AddForeignKey("district_id", "district", "district_id")
	accountDistrict := make([]int, numAccounts)
	accountHealth := make([]float64, numAccounts) // latent balance health
	for a := 0; a < numAccounts; a++ {
		d := rng.Intn(numDistricts)
		accountDistrict[a] = d
		accountHealth[a] = rng.Float64()
		account.AppendRow(
			dataset.Int(10000+(a)),
			dataset.Int(1000+(d)),
			dataset.String(pick(frequencies, rng)),
			dataset.Int(1993+rng.Intn(7)),
		)
	}

	trans := dataset.NewTable("trans", "trans_id", "account_id", "amount", "balance", "trans_type")
	trans.AddForeignKey("account_id", "account", "account_id")
	transOfAccount := make([][]int32, numAccounts)
	tid := 0
	for a := 0; a < numAccounts; a++ {
		n := transPerAccount/2 + rng.Intn(transPerAccount)
		for k := 0; k < n; k++ {
			balance := accountHealth[a]*60000 + gauss(rng, 0, 5000)
			trans.AppendRow(
				dataset.Int(100000+(tid)),
				dataset.Int(10000+(a)),
				dataset.Number(absf(gauss(rng, 2000, 1500))),
				dataset.Number(balance),
				dataset.String(pick(transTypes, rng)),
			)
			transOfAccount[a] = append(transOfAccount[a], int32(tid))
			tid++
		}
	}

	order := dataset.NewTable("orders", "order_id", "account_id", "amount", "k_symbol")
	order.AddForeignKey("account_id", "account", "account_id")
	orderOfAccount := make([][]int32, numAccounts)
	oid := 0
	for a := 0; a < numAccounts; a++ {
		n := 1 + rng.Intn(3)
		for k := 0; k < n; k++ {
			order.AppendRow(
				dataset.Int(400000+(oid)),
				dataset.Int(10000+(a)),
				dataset.Number(absf(gauss(rng, 3000, 2000))),
				dataset.String(pick(orderSymbols, rng)),
			)
			orderOfAccount[a] = append(orderOfAccount[a], int32(oid))
			oid++
		}
	}

	client := dataset.NewTable("client", "client_id", "district_id", "birth_year")
	client.SetKeys("client_id")
	client.AddForeignKey("district_id", "district", "district_id")
	disp := dataset.NewTable("disp", "disp_id", "client_id", "account_id", "disp_type")
	disp.SetKeys("disp_id")
	disp.AddForeignKey("client_id", "client", "client_id")
	disp.AddForeignKey("account_id", "account", "account_id")
	card := dataset.NewTable("card", "card_id", "disp_id", "card_type", "issued_year")
	card.SetKeys("card_id")
	card.AddForeignKey("disp_id", "disp", "disp_id")
	for c := 0; c < numClients; c++ {
		client.AppendRow(
			dataset.Int(500000+(c)),
			dataset.Int(1000+(rng.Intn(numDistricts))),
			dataset.Int(1940+rng.Intn(50)),
		)
		disp.AppendRow(
			dataset.Int(600000+(c)),
			dataset.Int(500000+(c)),
			dataset.Int(10000+(c%numAccounts)),
			dataset.String(pick(dispTypes, rng)),
		)
		if rng.Float64() < 0.3 {
			card.AppendRow(
				dataset.Int(700000+(c)),
				dataset.Int(600000+(c)),
				dataset.String(pick(cardTypes, rng)),
				dataset.Int(1994+rng.Intn(6)),
			)
		}
	}

	loan := dataset.NewTable("loan", "loan_id", "account_id", "amount", "duration", "status")
	loan.SetKeys("loan_id")
	loan.AddForeignKey("account_id", "account", "account_id")
	entities := make([][]graph.RowRef, numLoans)
	for l := 0; l < numLoans; l++ {
		a := rng.Intn(numAccounts)
		amount := absf(gauss(rng, 100000, 60000))
		// Default risk: low balance health, high unemployment, large
		// loan relative to health.
		risk := 1.2*(1-accountHealth[a]) +
			0.08*unemployment[accountDistrict[a]] +
			amount/400000 +
			gauss(rng, 0, 0.15)
		status := "paid"
		if risk > 1.25 {
			status = "default"
		}
		loan.AppendRow(
			dataset.Int(800000+(l)),
			dataset.Int(10000+(a)),
			dataset.Number(amount),
			dataset.Int(12*(1+rng.Intn(5))),
			dataset.String(status),
		)
		entities[l] = []graph.RowRef{
			{Table: "loan", Row: int32(l)},
			{Table: "account", Row: int32(a)},
		}
		for _, t := range transOfAccount[a] {
			entities[l] = append(entities[l], graph.RowRef{Table: "trans", Row: t})
		}
		for _, o := range orderOfAccount[a] {
			entities[l] = append(entities[l], graph.RowRef{Table: "orders", Row: o})
		}
	}

	db := dataset.NewDatabase(loan, account, district, trans, order, client, disp, card)
	return &Spec{
		Name:           "financial",
		DB:             db,
		BaseTable:      "loan",
		Target:         "status",
		Classification: true,
		Entities:       entities,
	}
}
