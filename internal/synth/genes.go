package synth

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/graph"
)

// GenesOptions configures the Genes-shaped dataset (paper Table 4:
// 3 tables, ~6K rows, classification, missing data, 93% string
// columns). The task mirrors KDD Cup 2001: predict protein
// localization from gene annotations and pairwise interactions.
type GenesOptions struct {
	// Scale multiplies the published row counts. Default 1.0 (~6K
	// rows); tests use smaller scales.
	Scale float64
	Seed  int64
}

// Genes generates the dataset. The localization target is driven by
// annotation attributes (function, complex) stored outside the base
// table; the base table's own attributes are weak predictors, so Base
// is far below Full.
func Genes(opts GenesOptions) *Spec {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	numGenes := scaleCount(2000, opts.Scale, 120)
	numInteractions := scaleCount(2000, opts.Scale, 120)
	classes := []string{"nucleus", "cytoplasm", "membrane", "mitochondria"}
	chromosomes := vocab("chr", 16)
	phenotypes := vocab("pheno", 25)
	motifs := vocab("motif", 30)
	essentials := []string{"essential", "non_essential", "unknown"}

	// Per-class vocabularies for the predictive annotation columns;
	// 12 functions and 8 complexes per class.
	functions := make([][]string, len(classes))
	complexes := make([][]string, len(classes))
	for c := range classes {
		functions[c] = vocab("func_"+classes[c], 12)
		complexes[c] = vocab("complex_"+classes[c], 8)
	}

	genes := dataset.NewTable("genes", "gene_id", "chromosome", "essential", "localization")
	genes.SetKeys("gene_id")
	annotations := dataset.NewTable("annotations", "gene_id", "function", "complex", "phenotype", "motif")
	annotations.AddForeignKey("gene_id", "genes", "gene_id")
	interactions := dataset.NewTable("interactions", "gene_a", "gene_b", "interaction_type", "expression_corr")
	interactions.AddForeignKey("gene_a", "genes", "gene_id")
	interactions.AddForeignKey("gene_b", "genes", "gene_id")

	classOf := make([]int, numGenes)
	entities := make([][]graph.RowRef, numGenes)
	for g := 0; g < numGenes; g++ {
		cls := rng.Intn(len(classes))
		classOf[g] = cls
		gid := id("gene", g)
		// Chromosome is a weak predictor: 30% class-aligned.
		chrom := pick(chromosomes, rng)
		if rng.Float64() < 0.3 {
			chrom = chromosomes[cls*4+rng.Intn(4)]
		}
		genes.AppendRow(
			dataset.String(gid),
			dataset.String(chrom),
			dataset.String(pick(essentials, rng)),
			dataset.String(classes[cls]),
		)
		// Annotation: function is 90% class-consistent, complex 80%.
		fc, cc := cls, cls
		if rng.Float64() > 0.9 {
			fc = rng.Intn(len(classes))
		}
		if rng.Float64() > 0.8 {
			cc = rng.Intn(len(classes))
		}
		annotations.AppendRow(
			dataset.String(gid),
			dataset.String(pick(functions[fc], rng)),
			dataset.String(pick(complexes[cc], rng)),
			dataset.String(pick(phenotypes, rng)),
			dataset.String(pick(motifs, rng)),
		)
		entities[g] = []graph.RowRef{
			{Table: "genes", Row: int32(g)},
			{Table: "annotations", Row: int32(g)},
		}
	}
	interTypes := []string{"physical", "genetic", "regulatory"}
	for i := 0; i < numInteractions; i++ {
		a := rng.Intn(numGenes)
		// Interactions are homophilous: 70% within the same class.
		b := rng.Intn(numGenes)
		if rng.Float64() < 0.7 {
			for tries := 0; tries < 20; tries++ {
				cand := rng.Intn(numGenes)
				if classOf[cand] == classOf[a] {
					b = cand
					break
				}
			}
		}
		interactions.AppendRow(
			dataset.String(id("gene", a)),
			dataset.String(id("gene", b)),
			dataset.String(pick(interTypes, rng)),
			dataset.Number(gauss(rng, 0.5, 0.2)),
		)
		entities[a] = append(entities[a], graph.RowRef{Table: "interactions", Row: int32(i)})
	}

	injectMissing(annotations, []string{"phenotype", "motif"}, 0.10, rng)
	injectMissing(genes, []string{"essential"}, 0.08, rng)

	return &Spec{
		Name:           "genes",
		DB:             dataset.NewDatabase(genes, annotations, interactions),
		BaseTable:      "genes",
		Target:         "localization",
		Classification: true,
		Entities:       entities,
	}
}
