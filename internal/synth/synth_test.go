package synth

import (
	"testing"

	"repro/internal/dataset"
)

// checkSpec verifies the structural contract every generator must meet.
func checkSpec(t *testing.T, s *Spec, wantTables int, classification bool) {
	t.Helper()
	if err := s.DB.Validate(); err != nil {
		t.Fatalf("%s: invalid database: %v", s.Name, err)
	}
	if len(s.DB.Tables) != wantTables {
		t.Errorf("%s: %d tables, want %d", s.Name, len(s.DB.Tables), wantTables)
	}
	if s.Classification != classification {
		t.Errorf("%s: classification = %v", s.Name, s.Classification)
	}
	base := s.DB.Table(s.BaseTable)
	if base == nil {
		t.Fatalf("%s: base table %q missing", s.Name, s.BaseTable)
	}
	if base.Column(s.Target) == nil {
		t.Fatalf("%s: target column %q missing", s.Name, s.Target)
	}
	// Entity groups reference valid rows.
	for gi, group := range s.Entities {
		for _, ref := range group {
			tab := s.DB.Table(ref.Table)
			if tab == nil || int(ref.Row) >= tab.NumRows() || ref.Row < 0 {
				t.Fatalf("%s: entity %d has invalid ref %+v", s.Name, gi, ref)
			}
		}
	}
}

// stringColumnFraction computes the share of columns whose non-null
// values are predominantly strings.
func stringColumnFraction(db *dataset.Database) float64 {
	str, total := 0, 0
	for _, tab := range db.Tables {
		for _, c := range tab.Columns {
			total++
			nonNull, strings := 0, 0
			for _, v := range c.Values {
				if v.IsNull() {
					continue
				}
				nonNull++
				if v.Kind == dataset.KindString {
					strings++
				}
			}
			if nonNull > 0 && float64(strings) > 0.5*float64(nonNull) {
				str++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(str) / float64(total)
}

func hasMissingMarkers(db *dataset.Database) bool {
	markers := map[string]bool{}
	for _, m := range missingMarkers {
		markers[m] = true
	}
	for _, tab := range db.Tables {
		for _, c := range tab.Columns {
			for _, v := range c.Values {
				if v.Kind == dataset.KindString && markers[v.Str] {
					return true
				}
			}
		}
	}
	return false
}

func TestStudent(t *testing.T) {
	s := Student(StudentOptions{Students: 50, Seed: 1})
	checkSpec(t, s, 3, false)
	// Ground truth: total expenses = sum of ordered item prices.
	exp := s.DB.Table("expenses")
	orders := s.DB.Table("order_info")
	prices := s.DB.Table("price_info")
	priceOf := map[string]float64{}
	for i := 0; i < prices.NumRows(); i++ {
		priceOf[prices.Cell(i, "item").Str] = prices.Cell(i, "prices").Num
	}
	sums := map[string]float64{}
	for i := 0; i < orders.NumRows(); i++ {
		sums[orders.Cell(i, "name").Str] += priceOf[orders.Cell(i, "item").Str]
	}
	for i := 0; i < exp.NumRows(); i++ {
		name := exp.Cell(i, "name").Str
		if got := exp.Cell(i, "total_expenses").Num; got != sums[name] {
			t.Fatalf("student %s: total %v != sum %v", name, got, sums[name])
		}
	}
	// Noisy-attribute injection adds K columns per table.
	noisy := Student(StudentOptions{Students: 10, Seed: 1, NoisyAttrs: 2})
	for _, tab := range noisy.DB.Tables {
		clean := s.DB.Table(tab.Name)
		if tab.NumCols() != clean.NumCols()+2 {
			t.Errorf("%s: %d cols, want %d", tab.Name, tab.NumCols(), clean.NumCols()+2)
		}
	}
}

func TestGenesShape(t *testing.T) {
	s := Genes(GenesOptions{Scale: 0.1, Seed: 2})
	checkSpec(t, s, 3, true)
	if !hasMissingMarkers(s.DB) {
		t.Error("genes has no dirty missing markers")
	}
	if f := stringColumnFraction(s.DB); f < 0.8 {
		t.Errorf("genes string-column fraction = %v, want ~0.93", f)
	}
	// Target has 4 classes.
	classes := map[string]bool{}
	for _, v := range s.DB.Table("genes").Column("localization").Values {
		classes[v.Str] = true
	}
	if len(classes) != 4 {
		t.Errorf("classes = %d", len(classes))
	}
}

func TestKrakenShape(t *testing.T) {
	s := Kraken(KrakenOptions{Scale: 0.1, Seed: 3})
	checkSpec(t, s, 32, true)
	if hasMissingMarkers(s.DB) {
		t.Error("kraken should have no missing data")
	}
	if f := stringColumnFraction(s.DB); f != 0 {
		t.Errorf("kraken string fraction = %v, want 0", f)
	}
}

func TestFTPShape(t *testing.T) {
	s := FTP(FTPOptions{Scale: 0.02, Seed: 4})
	checkSpec(t, s, 2, true)
	if !hasMissingMarkers(s.DB) {
		t.Error("ftp has no missing markers")
	}
	f := stringColumnFraction(s.DB)
	if f < 0.3 || f > 0.7 {
		t.Errorf("ftp string fraction = %v, want ~0.5", f)
	}
	// Binary target.
	classes := map[string]bool{}
	for _, v := range s.DB.Table("sessions").Column("gender").Values {
		classes[v.Str] = true
	}
	if len(classes) != 2 {
		t.Errorf("gender classes = %v", classes)
	}
}

func TestFinancialShape(t *testing.T) {
	s := Financial(FinancialOptions{Scale: 0.05, Seed: 5})
	checkSpec(t, s, 8, true)
	if hasMissingMarkers(s.DB) {
		t.Error("financial should have no missing data")
	}
	f := stringColumnFraction(s.DB)
	if f > 0.6 {
		t.Errorf("financial string fraction = %v, want low-ish", f)
	}
	// Both loan outcomes occur.
	classes := map[string]int{}
	for _, v := range s.DB.Table("loan").Column("status").Values {
		classes[v.Str]++
	}
	if classes["paid"] == 0 || classes["default"] == 0 {
		t.Errorf("loan status distribution = %v", classes)
	}
}

func TestRestbaseAndBioShapes(t *testing.T) {
	r := Restbase(RestbaseOptions{Scale: 0.05, Seed: 6})
	checkSpec(t, r, 3, false)
	if f := stringColumnFraction(r.DB); f < 0.5 {
		t.Errorf("restbase string fraction = %v, want ~0.67", f)
	}
	b := Bio(BioOptions{Scale: 0.05, Seed: 7})
	checkSpec(t, b, 3, false)
	if !hasMissingMarkers(b.DB) {
		t.Error("bio has no missing markers")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Genes(GenesOptions{Scale: 0.05, Seed: 42})
	b := Genes(GenesOptions{Scale: 0.05, Seed: 42})
	ta, tb := a.DB.Table("genes"), b.DB.Table("genes")
	if ta.NumRows() != tb.NumRows() {
		t.Fatal("row counts differ")
	}
	for i := 0; i < ta.NumRows(); i++ {
		for j := range ta.Columns {
			if !ta.Columns[j].Values[i].Equal(tb.Columns[j].Values[i]) {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
	c := Genes(GenesOptions{Scale: 0.05, Seed: 43})
	same := true
	tc := c.DB.Table("genes")
	for i := 0; i < ta.NumRows() && i < tc.NumRows(); i++ {
		if !ta.Cell(i, "chromosome").Equal(tc.Cell(i, "chromosome")) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestScalabilityReplication(t *testing.T) {
	base := Scalability(ScalabilityOptions{Replication: 1, Seed: 8})
	doubled := Scalability(ScalabilityOptions{Replication: 2, Seed: 8})
	if doubled.TotalRows() != 2*base.TotalRows() {
		t.Errorf("rows %d, want %d", doubled.TotalRows(), 2*base.TotalRows())
	}
	distinct := func(db *dataset.Database) int {
		set := map[string]bool{}
		for _, tab := range db.Tables {
			for _, c := range tab.Columns {
				for _, v := range c.Values {
					set[v.Str] = true
				}
			}
		}
		return len(set)
	}
	if d1, d2 := distinct(base), distinct(doubled); d2 != 2*d1 {
		t.Errorf("distinct tokens %d -> %d, want doubling", d1, d2)
	}
}

func TestAddFlagColumns(t *testing.T) {
	s := Student(StudentOptions{Students: 20, Seed: 1})
	before := make(map[string]int)
	for _, tab := range s.DB.Tables {
		before[tab.Name] = tab.NumCols()
	}
	AddFlagColumns(s.DB, 2, 3, 7)
	for _, tab := range s.DB.Tables {
		if tab.NumCols() != before[tab.Name]+2 {
			t.Errorf("%s: cols %d, want %d", tab.Name, tab.NumCols(), before[tab.Name]+2)
		}
		if err := tab.Validate(); err != nil {
			t.Fatal(err)
		}
		// Low cardinality: at most 3 distinct values per flag column.
		c := tab.Column("flag_" + tab.Name + "_0")
		distinct := map[string]bool{}
		for _, v := range c.Values {
			distinct[v.Str] = true
		}
		if len(distinct) > 3 {
			t.Errorf("%s flag cardinality = %d", tab.Name, len(distinct))
		}
	}
}

func TestERPair(t *testing.T) {
	p := ER("x", EROptions{Entities: 100, ExtraPerSide: 20, Noise: 0.3, Seed: 9})
	if p.A.NumRows() != 120 || p.B.NumRows() != 120 {
		t.Fatalf("sizes %d/%d", p.A.NumRows(), p.B.NumRows())
	}
	if len(p.Matches) != 100 {
		t.Fatalf("matches = %d", len(p.Matches))
	}
	if err := p.A.Validate(); err != nil {
		t.Fatal(err)
	}
	// Matched rows share at least some attribute values on average.
	shared := 0
	for _, m := range p.Matches {
		for _, col := range []string{"brand", "product_line", "style", "pack"} {
			if p.A.Cell(m[0], col).Equal(p.B.Cell(m[1], col)) {
				shared++
			}
		}
	}
	if avg := float64(shared) / float64(len(p.Matches)); avg < 1.5 {
		t.Errorf("matched rows share %v attrs on average, too noisy", avg)
	}
	presets := ERPresets(1)
	if len(presets) != 3 {
		t.Errorf("presets = %d", len(presets))
	}
}
