package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/graph"
)

// KrakenOptions configures the Kraken-shaped dataset (paper Table 4:
// 32 tables, ~31K rows, classification, no missing data, 0% string
// columns). It mimics supercomputer telemetry: one machine table plus
// 31 per-sensor tables, everything numeric, with the machine state
// driven by a handful of the sensors.
type KrakenOptions struct {
	Scale float64
	Seed  int64
}

// Kraken generates the dataset. Numeric integer keys exercise the
// categorical-int textification path; only 4 of the 31 sensor tables
// carry signal, which is what makes feature engineering (Full+FE)
// valuable on this dataset.
func Kraken(opts KrakenOptions) *Spec {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	const sensorTables = 31
	numMachines := scaleCount(1000, opts.Scale, 80)

	machines := dataset.NewTable("machines", "machine_id", "rack", "slot", "state")
	machines.SetKeys("machine_id")

	// Latent per-machine load factors drive the predictive sensors.
	load := make([]float64, numMachines)
	temp := make([]float64, numMachines)
	for m := range load {
		load[m] = rng.Float64()
		temp[m] = rng.Float64()
	}
	// The signal sensors; all others are noise.
	signalSensors := map[int]bool{3: true, 7: true, 12: true, 25: true}

	entities := make([][]graph.RowRef, numMachines)
	for m := 0; m < numMachines; m++ {
		state := 0 // healthy
		if load[m] > 0.75 || (load[m] > 0.5 && temp[m] > 0.7) {
			state = 2 // critical
		} else if load[m] > 0.5 || temp[m] > 0.8 {
			state = 1 // degraded
		}
		machines.AppendRow(
			dataset.Int(m+1),
			dataset.Int(rng.Intn(24)),
			dataset.Int(rng.Intn(48)),
			dataset.Int(state),
		)
		entities[m] = []graph.RowRef{{Table: "machines", Row: int32(m)}}
	}

	db := dataset.NewDatabase(machines)
	for s := 0; s < sensorTables; s++ {
		name := fmt.Sprintf("sensor_%02d", s)
		t := dataset.NewTable(name, "machine_id", "reading_mean", "reading_max", "reading_var")
		t.AddForeignKey("machine_id", "machines", "machine_id")
		for m := 0; m < numMachines; m++ {
			var mean float64
			switch {
			case signalSensors[s] && (s == 3 || s == 12):
				mean = load[m]*80 + gauss(rng, 0, 4)
			case signalSensors[s]:
				mean = temp[m]*60 + gauss(rng, 0, 3)
			default:
				mean = gauss(rng, 50, 15)
			}
			t.AppendRow(
				dataset.Int(m+1),
				dataset.Number(mean),
				dataset.Number(mean+absf(gauss(rng, 5, 2))),
				dataset.Number(absf(gauss(rng, 3, 1.5))),
			)
			entities[m] = append(entities[m], graph.RowRef{Table: name, Row: int32(m)})
		}
		db.Add(t)
	}

	return &Spec{
		Name:           "kraken",
		DB:             db,
		BaseTable:      "machines",
		Target:         "state",
		Classification: true,
		Entities:       entities,
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
