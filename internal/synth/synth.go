// Package synth generates the synthetic datasets that stand in for the
// paper's evaluation data (Table 4). Each generator reproduces the
// published *shape* of its dataset — table count, approximate row count,
// task type, missing data, and the fraction of string columns — and
// plants a ground-truth key/foreign-key structure in which the
// predictive signal lives outside the base table. That is the property
// the paper's claims depend on: Base < Disc <= Full <= Full+FE, with
// embeddings recovering the cross-table signal without seeing the keys.
//
// Ground-truth FK metadata is attached to the tables for the Full and
// Full+FE baselines; Leva's pipeline never reads it.
package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/graph"
)

// Spec bundles a generated database with the task definition and the
// ground truth the microbenchmarks need.
type Spec struct {
	Name string
	DB   *dataset.Database
	// BaseTable holds the target column.
	BaseTable string
	Target    string
	// Classification is false for regression tasks.
	Classification bool
	// Entities lists, per ground-truth entity, the rows (across
	// tables) that describe it — the "Within Entities" groups of the
	// Table 3 clustering microbenchmark.
	Entities [][]graph.RowRef
}

// missingMarkers are the dirty representations of absent data the
// refinement stage must detect dynamically (paper Section 4.1).
var missingMarkers = []string{"?", "null", "n/a", "-", "missing"}

// injectMissing replaces roughly rate of the values in the named
// columns with dirty missing markers (strings, not nulls, so detection
// is the pipeline's job).
func injectMissing(t *dataset.Table, cols []string, rate float64, rng *rand.Rand) {
	for _, name := range cols {
		c := t.Column(name)
		if c == nil {
			continue
		}
		for i := range c.Values {
			if rng.Float64() < rate {
				c.Values[i] = dataset.String(missingMarkers[rng.Intn(len(missingMarkers))])
			}
		}
	}
}

// vocab builds a deterministic categorical vocabulary such as
// ["cuisine_0", ..., "cuisine_k-1"].
func vocab(prefix string, k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("%s_%d", prefix, i)
	}
	return out
}

// pick returns a uniform element of vs.
func pick(vs []string, rng *rand.Rand) string { return vs[rng.Intn(len(vs))] }

// id renders an entity key such as "gene_00042". String keys keep join
// recovery independent of the numeric-key textification path, which the
// Kraken-shaped dataset exercises separately.
func id(prefix string, i int) string { return fmt.Sprintf("%s_%05d", prefix, i) }

// scaleCount scales a row count by factor, with a floor to keep tiny
// test runs meaningful.
func scaleCount(n int, scale float64, floor int) int {
	out := int(float64(n) * scale)
	if out < floor {
		out = floor
	}
	return out
}

// gauss returns a N(mu, sigma) draw.
func gauss(rng *rand.Rand, mu, sigma float64) float64 {
	return mu + sigma*rng.NormFloat64()
}

// AddFlagColumns appends k low-cardinality categorical noise columns
// ("status", "verified", ...) to every table. Real relational data is
// full of such columns; their tokens become enormous hub value nodes,
// which is precisely the condition under which the paper's
// inverse-degree edge weighting (and walk balancing) pays off. The
// clean generators omit them, so ablations that need hub noise inject
// it explicitly with this helper.
func AddFlagColumns(db *dataset.Database, k, cardinality int, seed int64) {
	if cardinality < 2 {
		cardinality = 2
	}
	rng := rand.New(rand.NewSource(seed))
	for _, t := range db.Tables {
		n := t.NumRows()
		for j := 0; j < k; j++ {
			vals := make([]dataset.Value, n)
			for i := range vals {
				vals[i] = dataset.String(fmt.Sprintf("flagval_%d_%d", j, rng.Intn(cardinality)))
			}
			t.Columns = append(t.Columns, &dataset.Column{
				Name:   fmt.Sprintf("flag_%s_%d", t.Name, j),
				Values: vals,
			})
		}
	}
}
