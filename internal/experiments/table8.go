package experiments

import (
	"fmt"
	"strings"

	"repro/internal/er"
	"repro/internal/synth"
)

// Table8Result holds the entity-resolution comparison of paper Table 8:
// F1 per method on the three benchmark-shaped catalog pairs.
type Table8Result struct {
	Datasets []string
	Methods  []er.Method
	F1       map[string]map[er.Method]float64
}

// table8Methods follows the paper's column order.
var table8Methods = []er.Method{er.MethodEmbDIS, er.MethodEmbDIF, er.MethodDeepER, er.MethodLeva}

// Table8 runs entity resolution with each embedding method on the
// synthetic pairs whose noise levels reproduce the benchmark difficulty
// ordering (BeerAdvo-RateBeer easiest, Amazon-Google hardest).
func Table8(opts Options) (*Table8Result, error) {
	opts = opts.withDefaults()
	entities := int(400 * opts.Scale / 0.15)
	if entities < 100 {
		entities = 100
	}
	pairs := []*synth.ERPair{
		synth.ER("beeradvo_ratebeer", synth.EROptions{Noise: 0.22, Entities: entities, Seed: opts.Seed}),
		synth.ER("walmart_amazon", synth.EROptions{Noise: 0.38, Entities: entities, Seed: opts.Seed + 1}),
		synth.ER("amazon_google", synth.EROptions{Noise: 0.52, Entities: entities, Seed: opts.Seed + 2}),
	}
	res := &Table8Result{Methods: table8Methods, F1: make(map[string]map[er.Method]float64)}
	for _, pair := range pairs {
		res.Datasets = append(res.Datasets, pair.Name)
		res.F1[pair.Name] = make(map[er.Method]float64)
		for _, m := range table8Methods {
			pred, err := er.MatchTables(pair.A, pair.B, m, er.Options{Dim: opts.Dim, Seed: opts.Seed})
			if err != nil {
				return nil, fmt.Errorf("table8 %s/%s: %w", pair.Name, m, err)
			}
			_, _, f1 := er.Score(pred, pair.Matches)
			res.F1[pair.Name][m] = f1
		}
	}
	return res, nil
}

// String renders the paper's Table 8 layout.
func (r *Table8Result) String() string {
	var b strings.Builder
	b.WriteString("Table 8 — entity resolution, F1 score\n")
	headers := []string{"name"}
	for _, m := range r.Methods {
		headers = append(headers, string(m))
	}
	var rows [][]string
	for _, d := range r.Datasets {
		row := []string{d}
		for _, m := range r.Methods {
			row = append(row, f2(r.F1[d][m]))
		}
		rows = append(rows, row)
	}
	b.WriteString(renderTable(headers, rows))
	return b.String()
}
