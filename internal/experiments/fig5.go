package experiments

import (
	"fmt"
	"strings"

	"repro/internal/synth"
)

// Fig5Result holds the regression MAEs of paper Fig. 5:
// Scores[dataset][model][baseline].
type Fig5Result struct {
	Datasets  []string
	Models    []Model
	Baselines []Baseline
	Scores    map[string]map[Model]map[Baseline]float64
}

// regressionSpecs builds the two regression datasets of Table 4.
func regressionSpecs(opts Options) []*synth.Spec {
	return []*synth.Spec{
		synth.Restbase(synth.RestbaseOptions{Scale: opts.Scale, Seed: opts.Seed + 10}),
		synth.Bio(synth.BioOptions{Scale: opts.Scale, Seed: opts.Seed + 11}),
	}
}

// Fig5 reproduces the regression comparison: every baseline on Restbase
// and Bio under linear regression, ElasticNet, and the 2-layer network
// (one plot per dataset in the paper, models on the x axis).
func Fig5(opts Options) (*Fig5Result, error) {
	opts = opts.withDefaults()
	models := []Model{ModelLR, ModelEN, ModelNN}
	specs := regressionSpecs(opts)

	res := &Fig5Result{
		Models:    models,
		Baselines: AllBaselines,
		Scores:    make(map[string]map[Model]map[Baseline]float64),
	}
	for _, spec := range specs {
		res.Datasets = append(res.Datasets, spec.Name)
		res.Scores[spec.Name] = make(map[Model]map[Baseline]float64)
		for _, m := range models {
			res.Scores[spec.Name][m] = make(map[Baseline]float64)
		}
		for _, b := range AllBaselines {
			fs, err := PrepareBaseline(spec, b, opts)
			if err != nil {
				return nil, fmt.Errorf("fig5 %s/%s: %w", spec.Name, b, err)
			}
			for _, m := range models {
				res.Scores[spec.Name][m][b] = fs.Score(m, opts.Seed)
			}
		}
	}
	return res, nil
}

// String renders one MAE block per dataset, mirroring Fig. 5.
func (r *Fig5Result) String() string {
	var b strings.Builder
	for _, d := range r.Datasets {
		fmt.Fprintf(&b, "Fig 5 — regression MAE, dataset=%s (lower is better)\n", d)
		headers := append([]string{"model"}, baselineNames(r.Baselines)...)
		var rows [][]string
		for _, m := range r.Models {
			row := []string{string(m)}
			for _, bl := range r.Baselines {
				row = append(row, f3(r.Scores[d][m][bl]))
			}
			rows = append(rows, row)
		}
		b.WriteString(renderTable(headers, rows))
		b.WriteByte('\n')
	}
	return b.String()
}
