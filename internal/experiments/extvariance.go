package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/synth"
)

// ExtVarianceResult reports seed-to-seed variability of the headline
// comparison (Base vs Emb-MF vs Full on Genes), an extension beyond the
// paper: single-seed deltas smaller than the seed noise should not be
// over-read, and this experiment quantifies that noise.
type ExtVarianceResult struct {
	Seeds     int
	Baselines []Baseline
	Mean      map[Baseline]float64
	Std       map[Baseline]float64
	Runs      map[Baseline][]float64
}

// ExtVariance evaluates each baseline across several seeds (data
// generation, split, and embedding all reseeded together).
func ExtVariance(opts Options) (*ExtVarianceResult, error) {
	opts = opts.withDefaults()
	const seeds = 5
	baselines := []Baseline{BaselineBase, BaselineEmbMF, BaselineFull}
	res := &ExtVarianceResult{
		Seeds:     seeds,
		Baselines: baselines,
		Mean:      map[Baseline]float64{},
		Std:       map[Baseline]float64{},
		Runs:      map[Baseline][]float64{},
	}
	for s := 0; s < seeds; s++ {
		runOpts := opts
		runOpts.Seed = opts.Seed + int64(s)*101
		spec := synth.Genes(synth.GenesOptions{Scale: opts.Scale, Seed: runOpts.Seed})
		for _, b := range baselines {
			acc, err := EvalTask(spec, b, ModelRF, runOpts)
			if err != nil {
				return nil, fmt.Errorf("ext-variance seed %d %s: %w", s, b, err)
			}
			res.Runs[b] = append(res.Runs[b], acc)
		}
	}
	for _, b := range baselines {
		mean := 0.0
		for _, v := range res.Runs[b] {
			mean += v
		}
		mean /= float64(seeds)
		varr := 0.0
		for _, v := range res.Runs[b] {
			d := v - mean
			varr += d * d
		}
		res.Mean[b] = mean
		res.Std[b] = math.Sqrt(varr / float64(seeds))
	}
	return res, nil
}

// String renders mean ± std per baseline.
func (r *ExtVarianceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — seed variance over %d seeds (Genes, random forest accuracy)\n", r.Seeds)
	var rows [][]string
	for _, bl := range r.Baselines {
		runs := make([]string, len(r.Runs[bl]))
		for i, v := range r.Runs[bl] {
			runs[i] = f3(v)
		}
		rows = append(rows, []string{
			string(bl),
			fmt.Sprintf("%.3f ± %.3f", r.Mean[bl], r.Std[bl]),
			strings.Join(runs, " "),
		})
	}
	b.WriteString(renderTable([]string{"baseline", "mean ± std", "runs"}, rows))
	return b.String()
}
