package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/embed"
	"repro/internal/er"
)

// These tests exercise every result renderer on hand-constructed data,
// so the formatting paths stay covered without running the expensive
// experiments.

func TestTable3String(t *testing.T) {
	r := &Table3Result{
		Datasets: []string{"genes"},
		Methods:  []embed.Method{embed.MethodRW, embed.MethodMF},
		Within:   map[string]map[embed.Method][2]float64{"genes": {embed.MethodRW: {2.6, 3.4}, embed.MethodMF: {1.0, 1.4}}},
		Random:   map[string]map[embed.Method][2]float64{"genes": {embed.MethodRW: {3.7, 5.0}, embed.MethodMF: {1.3, 2.2}}},
		Ratio:    map[string]map[embed.Method]float64{"genes": {embed.MethodRW: 0.69, embed.MethodMF: 0.77}},
	}
	s := r.String()
	for _, want := range []string{"within entities", "randomly", "ratio", "genes/RW", "0.69"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestFig3String(t *testing.T) {
	r := &Fig3Result{NoisePercent: []float64{0, 50}, R2Linear: []float64{1, 0.7}, R2NN: []float64{1, 0.8}}
	s := r.String()
	if !strings.Contains(s, "R2 linear") || !strings.Contains(s, "50%") {
		t.Errorf("fig3 render:\n%s", s)
	}
}

func TestFig4String(t *testing.T) {
	r := &Fig4Result{
		Models:    []Model{ModelRF},
		Datasets:  []string{"genes"},
		Baselines: []Baseline{BaselineBase, BaselineEmbMF},
		Scores: map[Model]map[string]map[Baseline]float64{
			ModelRF: {"genes": {BaselineBase: 0.4, BaselineEmbMF: 0.7}},
		},
	}
	s := r.String()
	if !strings.Contains(s, "model=rf") || !strings.Contains(s, "0.700") {
		t.Errorf("fig4 render:\n%s", s)
	}
}

func TestFig5String(t *testing.T) {
	r := &Fig5Result{
		Datasets:  []string{"bio"},
		Models:    []Model{ModelEN},
		Baselines: []Baseline{BaselineBase},
		Scores: map[string]map[Model]map[Baseline]float64{
			"bio": {ModelEN: {BaselineBase: 2.8}},
		},
	}
	if s := r.String(); !strings.Contains(s, "dataset=bio") || !strings.Contains(s, "2.800") {
		t.Errorf("fig5 render:\n%s", s)
	}
}

func TestFig6aString(t *testing.T) {
	r := &Fig6aResult{
		Datasets: []string{"ftp"},
		Series:   []string{"max reported", "emb mf"},
		Scores:   map[string]map[string]float64{"ftp": {"max reported": 0.87, "emb mf": 0.84}},
	}
	if s := r.String(); !strings.Contains(s, "max reported") || !strings.Contains(s, "0.840") {
		t.Errorf("fig6a render:\n%s", s)
	}
}

func TestFig6bcString(t *testing.T) {
	r := &Fig6bcResult{
		MF: shares([]StageTime{{Stage: "textification", Duration: time.Millisecond},
			{Stage: "matrix factorization", Duration: 9 * time.Millisecond}}),
		RW: shares([]StageTime{{Stage: "walk generation", Duration: time.Second}}),
	}
	s := r.String()
	if !strings.Contains(s, "90.0%") || !strings.Contains(s, "walk generation") {
		t.Errorf("fig6bc render:\n%s", s)
	}
}

func TestTable5String(t *testing.T) {
	r := &Table5Result{
		Datasets: []string{"genes"},
		Methods:  []EmbMethod{EmbWord2Vec, EmbLevaMF},
		Scores: map[EmbMethod]map[string]float64{
			EmbWord2Vec: {"genes": 0.55}, EmbLevaMF: {"genes": 0.72},
		},
	}
	if s := r.String(); !strings.Contains(s, "word2vec") || !strings.Contains(s, "0.720") {
		t.Errorf("table5 render:\n%s", s)
	}
}

func TestFig7aString(t *testing.T) {
	r := &Fig7aResult{
		Factors: []int{1},
		Methods: []string{"leva mf"},
		Runtime: map[string][]time.Duration{"leva mf": {time.Second}},
		AllocBytes: map[string][]uint64{
			"leva mf": {10 << 20},
		},
	}
	if s := r.String(); !strings.Contains(s, "10.0MB") || !strings.Contains(s, "1s") {
		t.Errorf("fig7a render:\n%s", s)
	}
}

func TestTable6String(t *testing.T) {
	r := &Table6Result{Entries: []Table6Entry{
		{Dataset: "genes", Model: ModelLR, RowOnly: 0.6, DeltaNoReg: 0.0046, DeltaRegularization: 0.0297},
	}}
	s := r.String()
	if !strings.Contains(s, "genes, LR") || !strings.Contains(s, "+2.97") {
		t.Errorf("table6 render:\n%s", s)
	}
}

func TestTable7String(t *testing.T) {
	r := &Table7Result{
		Original: []int{5, 25},
		Reduced:  []int{5, 25},
		Accuracy: [][]float64{{0.57, -1}, {0.55, 0.63}},
	}
	s := r.String()
	if !strings.Contains(s, "0.630") {
		t.Errorf("table7 render:\n%s", s)
	}
	// Upper triangle stays blank.
	if strings.Contains(s, "-1") {
		t.Errorf("table7 renders absent cells:\n%s", s)
	}
}

func TestFig7bcStrings(t *testing.T) {
	b := &Fig7bResult{Bins: []int{10}, GenesAcc: []float64{0.6}, BioMAE: []float64{1.2}}
	if s := b.String(); !strings.Contains(s, "bins") || !strings.Contains(s, "1.200") {
		t.Errorf("fig7b render:\n%s", s)
	}
	c := &Fig7cResult{Datasets: []string{"ftp"}, Weighted: []float64{0.8}, Unweighted: []float64{0.78},
		RWRestart: []float64{0.81}, RWPlain: []float64{0.79}}
	if s := c.String(); !strings.Contains(s, "weighted") || !strings.Contains(s, "0.810") {
		t.Errorf("fig7c render:\n%s", s)
	}
}

func TestTable8String(t *testing.T) {
	r := &Table8Result{
		Datasets: []string{"walmart_amazon"},
		Methods:  []er.Method{er.MethodLeva},
		F1:       map[string]map[er.Method]float64{"walmart_amazon": {er.MethodLeva: 0.67}},
	}
	if s := r.String(); !strings.Contains(s, "walmart_amazon") || !strings.Contains(s, "0.67") {
		t.Errorf("table8 render:\n%s", s)
	}
}

func TestTable4RunsAndRenders(t *testing.T) {
	r, err := Table4(Options{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("datasets = %d", len(r.Rows))
	}
	s := r.String()
	for _, want := range []string{"genes", "kraken", "% string cols"} {
		if !strings.Contains(s, want) {
			t.Errorf("table4 render missing %q", want)
		}
	}
}

func TestExtGloVeString(t *testing.T) {
	r := &ExtGloVeResult{
		Datasets: []string{"genes"},
		Methods:  []embed.Method{embed.MethodGloVe},
		Scores:   map[string]map[embed.Method]float64{"genes": {embed.MethodGloVe: 0.6}},
	}
	if s := r.String(); !strings.Contains(s, "glove") {
		t.Errorf("ext-glove render:\n%s", s)
	}
}
