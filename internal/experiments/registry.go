package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment and returns its rendered result.
type Runner func(Options) (fmt.Stringer, error)

var registry = map[string]Runner{}

// register adds a runner under an experiment id (e.g. "fig4").
func register(id string, r Runner) { registry[id] = r }

// Run executes the experiment with the given id.
func Run(id string, opts Options) (fmt.Stringer, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(opts)
}

// IDs lists registered experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func init() {
	register("table3", func(o Options) (fmt.Stringer, error) { return Table3(o) })
	register("fig3", func(o Options) (fmt.Stringer, error) { return Fig3(o) })
	register("table4", func(o Options) (fmt.Stringer, error) { return Table4(o) })
	register("fig4", func(o Options) (fmt.Stringer, error) { return Fig4(o) })
	register("fig5", func(o Options) (fmt.Stringer, error) { return Fig5(o) })
	register("fig6a", func(o Options) (fmt.Stringer, error) { return Fig6a(o) })
	register("fig6bc", func(o Options) (fmt.Stringer, error) { return Fig6bc(o) })
	register("table5", func(o Options) (fmt.Stringer, error) { return Table5(o) })
	register("fig7a", func(o Options) (fmt.Stringer, error) { return Fig7a(o) })
	register("table6", func(o Options) (fmt.Stringer, error) { return Table6(o) })
	register("table7", func(o Options) (fmt.Stringer, error) { return Table7(o) })
	register("fig7b", func(o Options) (fmt.Stringer, error) { return Fig7b(o) })
	register("fig7c", func(o Options) (fmt.Stringer, error) { return Fig7c(o) })
	register("table8", func(o Options) (fmt.Stringer, error) { return Table8(o) })
	register("ext-glove", func(o Options) (fmt.Stringer, error) { return ExtGloVe(o) })
	register("ext-valuenodes", func(o Options) (fmt.Stringer, error) { return ExtValueNodes(o) })
	register("ext-variance", func(o Options) (fmt.Stringer, error) { return ExtVariance(o) })
}
