package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/stats"
	"repro/internal/synth"
)

// Table3Result holds the clustering microbenchmark of paper Table 3:
// percentile L1 distances between node embeddings, within ground-truth
// entities vs randomly paired, for RW and MF on three datasets.
type Table3Result struct {
	Datasets []string
	Methods  []embed.Method
	// Within[dataset][method] and Random[...] hold the {50th, 90th}
	// percentiles of per-group median L1 distances.
	Within map[string]map[embed.Method][2]float64
	Random map[string]map[embed.Method][2]float64
	// Ratio is Within-median / Random-median (paper's "50% Distance,
	// Ratio" row; < 1 means related rows embed closer).
	Ratio map[string]map[embed.Method]float64
}

// Table3 runs the microbenchmark: per entity, the median pairwise L1
// distance among up to 5 of its rows, versus the same statistic over
// randomly drawn rows, aggregated over up to 5000 entities.
func Table3(opts Options) (*Table3Result, error) {
	opts = opts.withDefaults()
	specs := []*synth.Spec{
		synth.Genes(synth.GenesOptions{Scale: opts.Scale, Seed: opts.Seed}),
		synth.Bio(synth.BioOptions{Scale: opts.Scale, Seed: opts.Seed + 11}),
		synth.Financial(synth.FinancialOptions{Scale: opts.Scale, Seed: opts.Seed + 3}),
	}
	methods := []embed.Method{embed.MethodRW, embed.MethodMF}
	res := &Table3Result{
		Methods: methods,
		Within:  make(map[string]map[embed.Method][2]float64),
		Random:  make(map[string]map[embed.Method][2]float64),
		Ratio:   make(map[string]map[embed.Method]float64),
	}
	for _, spec := range specs {
		res.Datasets = append(res.Datasets, spec.Name)
		res.Within[spec.Name] = make(map[embed.Method][2]float64)
		res.Random[spec.Name] = make(map[embed.Method][2]float64)
		res.Ratio[spec.Name] = make(map[embed.Method]float64)
		for _, m := range methods {
			built, err := core.BuildEmbedding(spec.DB, core.Config{
				Method: m, Dim: opts.Dim, Seed: opts.Seed, RW: rwOptions(),
			})
			if err != nil {
				return nil, fmt.Errorf("table3 %s/%s: %w", spec.Name, m, err)
			}
			within, random := entityDistances(spec, built.Embedding, opts.Seed)
			res.Within[spec.Name][m] = [2]float64{stats.Quantile(within, 0.5), stats.Quantile(within, 0.9)}
			res.Random[spec.Name][m] = [2]float64{stats.Quantile(random, 0.5), stats.Quantile(random, 0.9)}
			if r := stats.Quantile(random, 0.5); r > 0 {
				res.Ratio[spec.Name][m] = stats.Quantile(within, 0.5) / r
			}
		}
	}
	return res, nil
}

// entityDistances samples up to 5000 entities and returns the median
// pairwise L1 distance within each entity's rows and within randomly
// drawn control groups of the same size.
func entityDistances(spec *synth.Spec, e *embed.Embedding, seed int64) (within, random []float64) {
	rng := rand.New(rand.NewSource(seed))
	const maxEntities, groupSize = 5000, 5

	// Gather all row-node vectors for the random control group.
	var allRows [][]float64
	for _, group := range spec.Entities {
		for _, ref := range group {
			if v, ok := e.Vector(embed.RowKey(ref.Table, int(ref.Row))); ok {
				allRows = append(allRows, v)
			}
		}
	}
	if len(allRows) < groupSize {
		return nil, nil
	}

	entities := spec.Entities
	if len(entities) > maxEntities {
		entities = entities[:maxEntities]
	}
	for _, group := range entities {
		vecs := groupVectors(group, e, groupSize)
		if len(vecs) < 2 {
			continue
		}
		within = append(within, medianPairwiseL1(vecs))
		ctrl := make([][]float64, groupSize)
		for i := range ctrl {
			ctrl[i] = allRows[rng.Intn(len(allRows))]
		}
		random = append(random, medianPairwiseL1(ctrl))
	}
	return within, random
}

func groupVectors(group []graph.RowRef, e *embed.Embedding, limit int) [][]float64 {
	var vecs [][]float64
	for _, ref := range group {
		if len(vecs) >= limit {
			break
		}
		if v, ok := e.Vector(embed.RowKey(ref.Table, int(ref.Row))); ok {
			vecs = append(vecs, v)
		}
	}
	return vecs
}

func medianPairwiseL1(vecs [][]float64) float64 {
	var ds []float64
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			ds = append(ds, matrix.L1Distance(vecs[i], vecs[j]))
		}
	}
	sort.Float64s(ds)
	return ds[len(ds)/2]
}

// String renders the paper's Table 3 layout.
func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3 — percentile L1 distances between node embeddings\n")
	headers := []string{"group", "pct"}
	for _, d := range r.Datasets {
		for _, m := range r.Methods {
			headers = append(headers, fmt.Sprintf("%s/%s", d, strings.ToUpper(string(m))))
		}
	}
	var rows [][]string
	for pi, pct := range []string{"50%", "90%"} {
		row := []string{"within entities", pct}
		for _, d := range r.Datasets {
			for _, m := range r.Methods {
				row = append(row, f2(r.Within[d][m][pi]))
			}
		}
		rows = append(rows, row)
	}
	for pi, pct := range []string{"50%", "90%"} {
		row := []string{"randomly", pct}
		for _, d := range r.Datasets {
			for _, m := range r.Methods {
				row = append(row, f2(r.Random[d][m][pi]))
			}
		}
		rows = append(rows, row)
	}
	ratio := []string{"50% distance", "ratio"}
	for _, d := range r.Datasets {
		for _, m := range r.Methods {
			ratio = append(ratio, f2(r.Ratio[d][m]))
		}
	}
	rows = append(rows, ratio)
	b.WriteString(renderTable(headers, rows))
	return b.String()
}
