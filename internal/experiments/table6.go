package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/ml"
	"repro/internal/synth"
)

// Table6Result holds the deployment-strategy ablation of paper Table 6:
// accuracy deltas (percentage points) of Row+Value featurization
// relative to Row-only, with and without model regularization.
type Table6Result struct {
	// Rows follow the paper's "dataset, model" layout.
	Entries []Table6Entry
}

// Table6Entry is one (dataset, model) ablation row.
type Table6Entry struct {
	Dataset             string
	Model               Model
	RowOnly             float64 // baseline accuracy
	DeltaNoReg          float64 // Row+Value, unregularized, minus RowOnly
	DeltaRegularization float64 // Row+Value, regularized, minus RowOnly
}

// Table6 builds one MF embedding per dataset and deploys it three ways:
// Row-only (the reference), Row+Value without regularization, and
// Row+Value with per-model regularization (min-leaf for the forest, a
// stronger L1 for logistic regression, dropout for the network).
func Table6(opts Options) (*Table6Result, error) {
	opts = opts.withDefaults()
	specs := []*synth.Spec{
		synth.Genes(synth.GenesOptions{Scale: opts.Scale, Seed: opts.Seed}),
		synth.FTP(synth.FTPOptions{Scale: opts.Scale, Seed: opts.Seed + 2}),
	}
	res := &Table6Result{}
	for _, spec := range specs {
		rowFS, rvFS, err := prepareBothModes(spec, opts)
		if err != nil {
			return nil, fmt.Errorf("table6 %s: %w", spec.Name, err)
		}
		for _, m := range []Model{ModelRF, ModelLR, ModelNN} {
			entry := Table6Entry{Dataset: spec.Name, Model: m}
			entry.RowOnly = rowFS.Score(m, opts.Seed)
			entry.DeltaNoReg = rvFS.Score(m, opts.Seed) - entry.RowOnly
			entry.DeltaRegularization = scoreRegularized(rvFS, m, opts.Seed) - entry.RowOnly
			res.Entries = append(res.Entries, entry)
		}
	}
	return res, nil
}

// prepareBothModes builds the embedding once and featurizes the same
// split with both deployment modes.
func prepareBothModes(spec *synth.Spec, opts Options) (rowOnly, rowValue *FeatureSet, err error) {
	base := spec.DB.Table(spec.BaseTable)
	split := ml.TrainTestSplit(base.NumRows(), testFraction, opts.Seed)
	trainBase := base.SelectRows(split.Train).DropColumns(spec.Target)
	embDB := spec.DB.Without(spec.BaseTable)
	embDB.Add(trainBase)

	built, err := core.BuildEmbedding(embDB, core.Config{
		Dim: opts.Dim, Seed: opts.Seed, Method: embed.MethodMF,
	})
	if err != nil {
		return nil, nil, err
	}
	yAll, err := encodeLabels(base, spec.Target)
	if err != nil {
		return nil, nil, err
	}
	testBase := base.SelectRows(split.Test)

	build := func(mode core.FeaturizationMode) (*FeatureSet, error) {
		xTrain, err := built.FeaturizeWithMode(trainBase, spec.BaseTable, nil, func(i int) int { return i }, mode)
		if err != nil {
			return nil, err
		}
		xTest, err := built.FeaturizeWithMode(testBase, spec.BaseTable, []string{spec.Target}, func(i int) int { return -1 }, mode)
		if err != nil {
			return nil, err
		}
		return &FeatureSet{
			XTrain: xTrain, XTest: xTest,
			YClassTrain:    ml.SelectLabels(yAll, split.Train),
			YClassTest:     ml.SelectLabels(yAll, split.Test),
			Classification: true,
		}, nil
	}
	rowOnly, err = build(core.RowOnly)
	if err != nil {
		return nil, nil, err
	}
	rowValue, err = build(core.RowPlusValue)
	return rowOnly, rowValue, err
}

// scoreRegularized evaluates the regularized variant of each model
// family (paper Table 6: min nodes per leaf, l1 penalty, dropout).
func scoreRegularized(fs *FeatureSet, m Model, seed int64) float64 {
	xTrain, xTest := fs.XTrain, fs.XTest
	var c ml.Classifier
	switch m {
	case ModelRF:
		c = &ml.RandomForest{NumTrees: 40, MinLeaf: 8, Seed: seed}
	case ModelLR:
		s := ml.FitStandardizer(xTrain)
		xTrain, xTest = s.Transform(xTrain), s.Transform(xTest)
		c = &ml.LogisticRegression{Alpha: 1e-3, L1Ratio: 0.9, Epochs: 40, Seed: seed}
	case ModelNN:
		s := ml.FitStandardizer(xTrain)
		xTrain, xTest = s.Transform(xTrain), s.Transform(xTest)
		c = &ml.MLP{Hidden: 64, Epochs: 40, Dropout: 0.3, Seed: seed}
	}
	c.Fit(xTrain, fs.YClassTrain)
	return ml.Accuracy(c.Predict(xTest), fs.YClassTest)
}

// String renders the paper's Table 6 delta layout.
func (r *Table6Result) String() string {
	var b strings.Builder
	b.WriteString("Table 6 — deployment ablation: Row+Value vs Row (accuracy deltas, points)\n")
	var rows [][]string
	for _, e := range r.Entries {
		rows = append(rows, []string{
			fmt.Sprintf("%s, %s", e.Dataset, strings.ToUpper(string(e.Model))),
			f3(e.RowOnly),
			fmt.Sprintf("%+.2f", 100*e.DeltaNoReg),
			fmt.Sprintf("%+.2f", 100*e.DeltaRegularization),
		})
	}
	b.WriteString(renderTable([]string{"name", "row acc", "row+value no reg", "row+value reg"}, rows))
	return b.String()
}
