package experiments

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/synth"
)

// TestTuneGenesMF sweeps MF variants on Genes; enable with LEVA_TUNE=1.
func TestTuneGenesMF(t *testing.T) {
	if os.Getenv("LEVA_TUNE") == "" {
		t.Skip("set LEVA_TUNE=1 to run the tuning harness")
	}
	opts := Options{Scale: 0.3, Seed: 42, Dim: 64}.withDefaults()
	spec := synth.Genes(synth.GenesOptions{Scale: opts.Scale, Seed: 42})
	configs := []struct {
		name string
		mf   embed.MFOptions
		feat core.FeaturizationMode
	}{
		{"w2-nocap", embed.MFOptions{Window: 2, PMICap: -1}, core.RowPlusValue},
		{"w2-cap3", embed.MFOptions{Window: 2}, core.RowPlusValue},
		{"w3-nocap", embed.MFOptions{Window: 3, PMICap: -1}, core.RowPlusValue},
		{"w2-cap6", embed.MFOptions{Window: 2, PMICap: 6}, core.RowPlusValue},
	}
	for _, c := range configs {
		cfg := core.Config{Dim: opts.Dim, Seed: opts.Seed, Method: embed.MethodMF, MF: c.mf, Featurization: c.feat}
		fs, err := prepareWithConfig(spec, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-14s rf=%.3f lr=%.3f nn=%.3f", c.name, fs.Score(ModelRF, 42), fs.Score(ModelLR, 42), fs.Score(ModelNN, 42))
	}
}
