package experiments

import (
	"os"
	"testing"

	"repro/internal/synth"
)

// TestTuneGenes compares baselines on the Genes dataset across scales;
// enable with LEVA_TUNE=1.
func TestTuneGenes(t *testing.T) {
	if os.Getenv("LEVA_TUNE") == "" {
		t.Skip("set LEVA_TUNE=1 to run the tuning harness")
	}
	for _, scale := range []float64{0.15, 0.45} {
		opts := Options{Scale: scale, Seed: 42, Dim: 64}.withDefaults()
		spec := synth.Genes(synth.GenesOptions{Scale: scale, Seed: 42})
		for _, b := range []Baseline{BaselineBase, BaselineFull, BaselineFullFE, BaselineEmbMF, BaselineEmbRW} {
			fs, err := PrepareBaseline(spec, b, opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("scale=%.2f %-8s rf=%.3f lr=%.3f", scale, b, fs.Score(ModelRF, 42), fs.Score(ModelLR, 42))
		}
	}
}
