package experiments

import (
	"fmt"
	"strings"

	"repro/internal/synth"
)

// Fig4Result holds the classification accuracies of paper Fig. 4:
// Scores[model][dataset][baseline].
type Fig4Result struct {
	Models    []Model
	Datasets  []string
	Baselines []Baseline
	Scores    map[Model]map[string]map[Baseline]float64
}

// classificationSpecs builds the four classification datasets of
// Table 4 at the experiment scale.
func classificationSpecs(opts Options) []*synth.Spec {
	return []*synth.Spec{
		synth.Genes(synth.GenesOptions{Scale: opts.Scale, Seed: opts.Seed}),
		synth.Kraken(synth.KrakenOptions{Scale: opts.Scale, Seed: opts.Seed + 1}),
		synth.FTP(synth.FTPOptions{Scale: opts.Scale, Seed: opts.Seed + 2}),
		synth.Financial(synth.FinancialOptions{Scale: opts.Scale, Seed: opts.Seed + 3}),
	}
}

// Fig4 reproduces the classification comparison: every baseline on
// every classification dataset, under random forest, logistic
// regression with ElasticNet, and the 2-layer network.
func Fig4(opts Options) (*Fig4Result, error) {
	opts = opts.withDefaults()
	models := []Model{ModelRF, ModelLR, ModelNN}
	specs := classificationSpecs(opts)

	res := &Fig4Result{
		Models:    models,
		Baselines: AllBaselines,
		Scores:    make(map[Model]map[string]map[Baseline]float64),
	}
	for _, m := range models {
		res.Scores[m] = make(map[string]map[Baseline]float64)
	}
	for _, spec := range specs {
		res.Datasets = append(res.Datasets, spec.Name)
		for _, m := range models {
			res.Scores[m][spec.Name] = make(map[Baseline]float64)
		}
		for _, b := range AllBaselines {
			fs, err := PrepareBaseline(spec, b, opts)
			if err != nil {
				return nil, fmt.Errorf("fig4 %s/%s: %w", spec.Name, b, err)
			}
			for _, m := range models {
				res.Scores[m][spec.Name][b] = fs.Score(m, opts.Seed)
			}
		}
	}
	return res, nil
}

// String renders one accuracy block per model, mirroring Fig. 4a-c.
func (r *Fig4Result) String() string {
	var b strings.Builder
	for _, m := range r.Models {
		fmt.Fprintf(&b, "Fig 4 — classification accuracy, model=%s (higher is better)\n", m)
		headers := append([]string{"dataset"}, baselineNames(r.Baselines)...)
		var rows [][]string
		for _, d := range r.Datasets {
			row := []string{d}
			for _, bl := range r.Baselines {
				row = append(row, f3(r.Scores[m][d][bl]))
			}
			rows = append(rows, row)
		}
		b.WriteString(renderTable(headers, rows))
		b.WriteByte('\n')
	}
	return b.String()
}

func baselineNames(bs []Baseline) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = string(b)
	}
	return out
}
