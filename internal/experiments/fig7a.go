package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/synth"
	"repro/internal/textify"
)

// Fig7aResult holds the scalability sweep of paper Fig. 7a: runtime and
// memory versus the replication factor K, for EmbDI, Leva RW and
// Leva MF.
type Fig7aResult struct {
	Factors []int
	// Runtime[method][i] is the embedding-build wall clock at
	// Factors[i]; AllocBytes the total allocation volume during it.
	Runtime    map[string][]time.Duration
	AllocBytes map[string][]uint64
	Methods    []string
}

// Fig7a runs the replication-factor sweep on the synthetic 3-table,
// 2000-row, 4000-token dataset. Both rows and distinct tokens grow
// linearly with K. Default factors are sized for a small machine; the
// paper sweeps to K=100.
func Fig7a(opts Options) (*Fig7aResult, error) {
	opts = opts.withDefaults()
	factors := []int{1, 2, 4}
	if opts.Scale >= 0.5 {
		factors = append(factors, 8, 16)
	}
	if opts.Scale >= 1 {
		factors = append(factors, 32, 64, 100)
	}
	methods := []string{"embdi", "leva rw", "leva mf"}
	res := &Fig7aResult{
		Factors:    factors,
		Methods:    methods,
		Runtime:    make(map[string][]time.Duration),
		AllocBytes: make(map[string][]uint64),
	}
	for _, k := range factors {
		db := synth.Scalability(synth.ScalabilityOptions{Replication: k, Seed: opts.Seed})
		model, err := textify.Fit(db, textify.Options{})
		if err != nil {
			return nil, err
		}
		tokenized, err := model.TransformAll(db)
		if err != nil {
			return nil, err
		}
		for _, m := range methods {
			dur, alloc := timeEmbedding(m, tokenized, opts)
			res.Runtime[m] = append(res.Runtime[m], dur)
			res.AllocBytes[m] = append(res.AllocBytes[m], alloc)
		}
	}
	return res, nil
}

// timeEmbedding measures wall clock and allocation volume of one
// embedding build. Allocation volume (TotalAlloc delta) tracks the
// working-set pressure each method generates; it is the portable proxy
// for the paper's resident-memory measurements.
func timeEmbedding(method string, tokenized []*textify.TokenizedTable, opts Options) (time.Duration, uint64) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	switch method {
	case "embdi":
		embed.EmbDIStyle(tokenized, embed.BaselineOptions{
			Dim: opts.Dim, Seed: opts.Seed, WalkLength: 40, WalksPerNode: 6, Epochs: 3,
		})
	case "leva rw":
		g, _ := graph.Build(tokenized, graph.Options{})
		ropts := rwOptions()
		ropts.Dim = opts.Dim
		ropts.Seed = opts.Seed
		embed.RW(g, ropts)
	case "leva mf":
		g, _ := graph.Build(tokenized, graph.Options{})
		embed.MF(g, embed.MFOptions{Dim: opts.Dim, Seed: opts.Seed})
	}
	dur := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return dur, after.TotalAlloc - before.TotalAlloc
}

// String renders runtime and memory series.
func (r *Fig7aResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 7a — scalability vs replication factor K\n")
	headers := []string{"K"}
	for _, m := range r.Methods {
		headers = append(headers, m+" time", m+" alloc")
	}
	var rows [][]string
	for i, k := range r.Factors {
		row := []string{fmt.Sprintf("%d", k)}
		for _, m := range r.Methods {
			row = append(row,
				r.Runtime[m][i].Round(time.Millisecond).String(),
				fmt.Sprintf("%.1fMB", float64(r.AllocBytes[m][i])/(1<<20)))
		}
		rows = append(rows, row)
	}
	b.WriteString(renderTable(headers, rows))
	return b.String()
}
