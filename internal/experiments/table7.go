package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/ml"
	"repro/internal/synth"
)

// Table7Result holds the PCA dimension-reduction matrix of paper
// Table 7 on the Genes dataset: Accuracy[i][j] is the accuracy with an
// embedding trained at Original[i] dimensions and projected down to
// Reduced[j] (entries with Reduced > Original are absent, -1).
type Table7Result struct {
	Original []int
	Reduced  []int
	Accuracy [][]float64
}

// Table7 trains MF embeddings at each original dimension, projects each
// with PCA to every smaller dimension, and scores a random forest on
// the featurized task — the "shrink storage without retraining"
// experiment of Section 6.5.2.
func Table7(opts Options) (*Table7Result, error) {
	opts = opts.withDefaults()
	dims := []int{5, 25, 50, 100, 200}
	spec := synth.Genes(synth.GenesOptions{Scale: opts.Scale, Seed: opts.Seed})

	base := spec.DB.Table(spec.BaseTable)
	split := ml.TrainTestSplit(base.NumRows(), testFraction, opts.Seed)
	trainBase := base.SelectRows(split.Train).DropColumns(spec.Target)
	embDB := spec.DB.Without(spec.BaseTable)
	embDB.Add(trainBase)
	testBase := base.SelectRows(split.Test)
	yAll, err := encodeLabels(base, spec.Target)
	if err != nil {
		return nil, err
	}
	yTrain := ml.SelectLabels(yAll, split.Train)
	yTest := ml.SelectLabels(yAll, split.Test)

	res := &Table7Result{Original: dims, Reduced: dims}
	for _, orig := range dims {
		built, err := core.BuildEmbedding(embDB, core.Config{
			Dim: orig, Seed: opts.Seed, Method: embed.MethodMF,
		})
		if err != nil {
			return nil, fmt.Errorf("table7 dim=%d: %w", orig, err)
		}
		var row []float64
		for _, red := range dims {
			if red > orig {
				row = append(row, -1)
				continue
			}
			r := built
			if red < orig {
				r = built.WithEmbedding(built.Embedding.ReduceDim(red))
			}
			xTrain, err := r.Featurize(trainBase, spec.BaseTable, nil, func(i int) int { return i })
			if err != nil {
				return nil, err
			}
			xTest, err := r.Featurize(testBase, spec.BaseTable, []string{spec.Target}, func(i int) int { return -1 })
			if err != nil {
				return nil, err
			}
			row = append(row, fitScoreClass(ModelRF, opts.Seed, xTrain, yTrain, xTest, yTest))
		}
		res.Accuracy = append(res.Accuracy, row)
	}
	return res, nil
}

// String renders the lower-triangular accuracy matrix.
func (r *Table7Result) String() string {
	var b strings.Builder
	b.WriteString("Table 7 — accuracy (Genes) before/after PCA projection\n")
	headers := []string{"original \\ reduced"}
	for _, d := range r.Reduced {
		headers = append(headers, fmt.Sprintf("%d", d))
	}
	var rows [][]string
	for i, orig := range r.Original {
		row := []string{fmt.Sprintf("%d", orig)}
		for j := range r.Reduced {
			if r.Accuracy[i][j] < 0 {
				row = append(row, "")
			} else {
				row = append(row, f3(r.Accuracy[i][j]))
			}
		}
		rows = append(rows, row)
	}
	b.WriteString(renderTable(headers, rows))
	return b.String()
}
