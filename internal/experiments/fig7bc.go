package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/synth"
	"repro/internal/textify"
)

// Fig7bResult holds the bin-count ablation of paper Fig. 7b: Genes
// accuracy and Bio MAE across histogram bin counts.
type Fig7bResult struct {
	Bins     []int
	GenesAcc []float64
	BioMAE   []float64
}

// Fig7b sweeps the numeric binning granularity. Too few bins collapse
// numeric information; too many create single-occupant bins whose value
// nodes are dropped (no shared rows), losing the information entirely.
func Fig7b(opts Options) (*Fig7bResult, error) {
	opts = opts.withDefaults()
	genes := synth.Genes(synth.GenesOptions{Scale: opts.Scale, Seed: opts.Seed})
	bio := synth.Bio(synth.BioOptions{Scale: opts.Scale, Seed: opts.Seed + 11})
	res := &Fig7bResult{}
	for _, bins := range []int{10, 20, 40, 80, 160} {
		cfg := core.Config{
			Dim: opts.Dim, Seed: opts.Seed, Method: embed.MethodMF,
			Textify: textify.Options{BinCount: bins},
		}
		gfs, err := prepareWithConfig(genes, cfg, opts)
		if err != nil {
			return nil, fmt.Errorf("fig7b genes bins=%d: %w", bins, err)
		}
		bfs, err := prepareWithConfig(bio, cfg, opts)
		if err != nil {
			return nil, fmt.Errorf("fig7b bio bins=%d: %w", bins, err)
		}
		res.Bins = append(res.Bins, bins)
		res.GenesAcc = append(res.GenesAcc, gfs.Score(ModelRF, opts.Seed))
		res.BioMAE = append(res.BioMAE, bfs.Score(ModelEN, opts.Seed))
	}
	return res, nil
}

// String renders both series.
func (r *Fig7bResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 7b — bin-count ablation (Genes accuracy up, Bio MAE down)\n")
	var rows [][]string
	for i, bins := range r.Bins {
		rows = append(rows, []string{fmt.Sprintf("%d", bins), f3(r.GenesAcc[i]), f3(r.BioMAE[i])})
	}
	b.WriteString(renderTable([]string{"bins", "genes acc", "bio mae"}, rows))
	return b.String()
}

// Fig7cResult holds the remaining ablations of paper Fig. 7c: weighted
// vs unweighted graphs (MF) and restart walks on vs off (RW).
type Fig7cResult struct {
	Datasets   []string
	Weighted   []float64
	Unweighted []float64
	RWRestart  []float64
	RWPlain    []float64
}

// Fig7c measures, per dataset, the effect of inverse-degree edge
// weighting on the MF embedding and of balanced restart walks on the RW
// embedding (6 normal + 4 restart iterations, per Section 6.6.3).
//
// Both mechanisms exist to defuse hub value nodes, so alongside the
// clean datasets the experiment includes a "genes+flags" variant with
// the low-cardinality junk columns real databases carry — the condition
// the paper's datasets exhibit and the clean generators do not.
func Fig7c(opts Options) (*Fig7cResult, error) {
	opts = opts.withDefaults()
	dirty := synth.Genes(synth.GenesOptions{Scale: opts.Scale, Seed: opts.Seed})
	synth.AddFlagColumns(dirty.DB, 3, 3, opts.Seed)
	dirty.Name = "genes+flags"
	specs := []*synth.Spec{
		synth.Genes(synth.GenesOptions{Scale: opts.Scale, Seed: opts.Seed}),
		synth.Financial(synth.FinancialOptions{Scale: opts.Scale, Seed: opts.Seed + 3}),
		synth.FTP(synth.FTPOptions{Scale: opts.Scale, Seed: opts.Seed + 2}),
		dirty,
	}
	res := &Fig7cResult{}
	for _, spec := range specs {
		res.Datasets = append(res.Datasets, spec.Name)

		weighted, err := configScore(spec, opts, core.Config{
			Dim: opts.Dim, Seed: opts.Seed, Method: embed.MethodMF,
		})
		if err != nil {
			return nil, fmt.Errorf("fig7c %s weighted: %w", spec.Name, err)
		}
		unweighted, err := configScore(spec, opts, core.Config{
			Dim: opts.Dim, Seed: opts.Seed, Method: embed.MethodMF,
			Graph: graph.Options{Unweighted: true},
		})
		if err != nil {
			return nil, fmt.Errorf("fig7c %s unweighted: %w", spec.Name, err)
		}
		res.Weighted = append(res.Weighted, weighted)
		res.Unweighted = append(res.Unweighted, unweighted)

		rw := rwOptions()
		rw.WalksPerNode = 10
		plain, err := configScore(spec, opts, core.Config{
			Dim: opts.Dim, Seed: opts.Seed, Method: embed.MethodRW, RW: rw,
		})
		if err != nil {
			return nil, fmt.Errorf("fig7c %s rw plain: %w", spec.Name, err)
		}
		rw.RestartIterations = 4
		restart, err := configScore(spec, opts, core.Config{
			Dim: opts.Dim, Seed: opts.Seed, Method: embed.MethodRW, RW: rw,
		})
		if err != nil {
			return nil, fmt.Errorf("fig7c %s rw restart: %w", spec.Name, err)
		}
		res.RWPlain = append(res.RWPlain, plain)
		res.RWRestart = append(res.RWRestart, restart)
	}
	return res, nil
}

func configScore(spec *synth.Spec, opts Options, cfg core.Config) (float64, error) {
	fs, err := prepareWithConfig(spec, cfg, opts)
	if err != nil {
		return 0, err
	}
	return fs.Score(ModelRF, opts.Seed), nil
}

// String renders both ablation groups.
func (r *Fig7cResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 7c — graph weighting (MF) and restart walks (RW), accuracy\n")
	var rows [][]string
	for i, d := range r.Datasets {
		rows = append(rows, []string{
			d,
			f3(r.Weighted[i]), f3(r.Unweighted[i]),
			f3(r.RWRestart[i]), f3(r.RWPlain[i]),
		})
	}
	b.WriteString(renderTable(
		[]string{"dataset", "weighted", "unweighted", "rw restart", "rw plain"}, rows))
	return b.String()
}
