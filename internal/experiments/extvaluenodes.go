package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/synth"
	"repro/internal/textify"
)

// ExtValueNodesResult quantifies the graph-construction ablation called
// out in Section 3.1: the value-node construction versus the naive
// pairwise row-row graph, on the same tokenized data.
type ExtValueNodesResult struct {
	Dataset        string
	Rows           int
	ValueNodeEdges int
	ValueNodeNodes int
	ValueNodeTime  time.Duration
	PairwiseEdges  int
	PairwiseNodes  int
	PairwiseTime   time.Duration
}

// ExtValueNodes builds both graphs over a Genes-shaped dataset. The
// pairwise construction is O(M N²) in the worst case, so this runner
// caps the dataset size regardless of the requested scale.
func ExtValueNodes(opts Options) (*ExtValueNodesResult, error) {
	opts = opts.withDefaults()
	scale := opts.Scale
	if scale > 0.2 {
		scale = 0.2 // pairwise blows up beyond this
	}
	spec := synth.Genes(synth.GenesOptions{Scale: scale, Seed: opts.Seed})
	model, err := textify.Fit(spec.DB, textify.Options{})
	if err != nil {
		return nil, err
	}
	tok, err := model.TransformAll(spec.DB)
	if err != nil {
		return nil, err
	}
	res := &ExtValueNodesResult{Dataset: spec.Name, Rows: spec.DB.TotalRows()}

	start := time.Now()
	g, _ := graph.Build(tok, graph.Options{})
	res.ValueNodeTime = time.Since(start)
	res.ValueNodeEdges = g.NumEdges()
	res.ValueNodeNodes = g.NumNodes()

	start = time.Now()
	p := graph.BuildPairwise(tok)
	res.PairwiseTime = time.Since(start)
	res.PairwiseEdges = p.NumEdges()
	res.PairwiseNodes = p.NumNodes()
	return res, nil
}

// String renders the comparison.
func (r *ExtValueNodesResult) String() string {
	var b strings.Builder
	b.WriteString("Extension — value nodes vs pairwise row-row graph (Section 3.1 ablation)\n")
	rows := [][]string{
		{"value nodes", fmt.Sprintf("%d", r.ValueNodeNodes), fmt.Sprintf("%d", r.ValueNodeEdges),
			r.ValueNodeTime.Round(time.Millisecond).String()},
		{"pairwise", fmt.Sprintf("%d", r.PairwiseNodes), fmt.Sprintf("%d", r.PairwiseEdges),
			r.PairwiseTime.Round(time.Millisecond).String()},
	}
	b.WriteString(renderTable([]string{"construction", "nodes", "edges", "build time"}, rows))
	if r.ValueNodeEdges > 0 {
		fmt.Fprintf(&b, "edge reduction: %.1fx on %d rows (%s)\n",
			float64(r.PairwiseEdges)/float64(r.ValueNodeEdges), r.Rows, r.Dataset)
	}
	return b.String()
}
