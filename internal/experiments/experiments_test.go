package experiments

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

func TestRegistryIDsComplete(t *testing.T) {
	want := []string{
		"ext-glove", "ext-valuenodes", "ext-variance",
		"fig3", "fig4", "fig5", "fig6a", "fig6bc",
		"fig7a", "fig7b", "fig7c",
		"table3", "table4", "table5", "table6", "table7", "table8",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ids[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRenderTable(t *testing.T) {
	out := renderTable([]string{"a", "bbbb"}, [][]string{{"xx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a ") || !strings.Contains(lines[0], "bbbb") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "--") {
		t.Errorf("separator = %q", lines[1])
	}
}

func TestEvalTaskOrderingTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive at any scale")
	}
	// The core claim at minimum viable scale: embedding features beat
	// the base table on a dataset whose signal lives elsewhere.
	opts := Options{Scale: 0.06, Seed: 42, Dim: 32}
	spec := synth.Genes(synth.GenesOptions{Scale: opts.Scale, Seed: opts.Seed})
	base, err := EvalTask(spec, BaselineBase, ModelRF, opts)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := EvalTask(spec, BaselineEmbMF, ModelRF, opts)
	if err != nil {
		t.Fatal(err)
	}
	full, err := EvalTask(spec, BaselineFull, ModelRF, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("base=%.3f emb-mf=%.3f full=%.3f", base, emb, full)
	if emb <= base {
		t.Errorf("embedding (%.3f) did not beat base (%.3f)", emb, base)
	}
	if full <= base {
		t.Errorf("full (%.3f) did not beat base (%.3f)", full, base)
	}
}

func TestModelConstructors(t *testing.T) {
	for _, m := range []Model{ModelRF, ModelLR, ModelNN} {
		if newClassifier(m, 1) == nil {
			t.Errorf("no classifier for %s", m)
		}
	}
	for _, m := range []Model{ModelRF, ModelLR, ModelEN, ModelNN} {
		if newRegressor(m, 1) == nil {
			t.Errorf("no regressor for %s", m)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown model did not panic")
		}
	}()
	newClassifier(Model("bogus"), 1)
}

func TestFeatureSetScoreBothTasks(t *testing.T) {
	fs := &FeatureSet{
		XTrain:         [][]float64{{0}, {1}, {0}, {1}, {0}, {1}},
		XTest:          [][]float64{{0}, {1}},
		YClassTrain:    []int{0, 1, 0, 1, 0, 1},
		YClassTest:     []int{0, 1},
		Classification: true,
	}
	if acc := fs.Score(ModelRF, 1); acc != 1 {
		t.Errorf("trivial classification accuracy = %v", acc)
	}
	fr := &FeatureSet{
		XTrain:    [][]float64{{0}, {1}, {2}, {3}, {4}, {5}},
		XTest:     [][]float64{{1}, {3}},
		YRegTrain: []float64{0, 2, 4, 6, 8, 10},
		YRegTest:  []float64{2, 6},
	}
	if mae := fr.Score(ModelLR, 1); mae > 0.1 {
		t.Errorf("trivial regression MAE = %v", mae)
	}
}

func TestPrepareBaselineDiscRuns(t *testing.T) {
	opts := Options{Scale: 0.06, Seed: 1, Dim: 16}
	spec := synth.Student(synth.StudentOptions{Students: 60, Seed: 1})
	spec.Classification = false
	fs, err := PrepareBaseline(spec, BaselineDisc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.XTrain) == 0 || len(fs.XTest) == 0 {
		t.Error("empty feature sets")
	}
	if fs.Classification {
		t.Error("student is regression")
	}
}

func TestFig6bcProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("builds embeddings")
	}
	res, err := Fig6bc(Options{Scale: 0.05, Seed: 1, Dim: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MF) != 3 || len(res.RW) != 4 {
		t.Fatalf("stage counts %d/%d", len(res.MF), len(res.RW))
	}
	sum := 0.0
	for _, s := range res.RW {
		sum += s.Share
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("RW shares sum to %v", sum)
	}
	// The paper's observation: embedding training dominates, the
	// earlier stages are negligible.
	if res.RW[3].Share < res.RW[0].Share {
		t.Error("SGNS training cheaper than textification?")
	}
	if !strings.Contains(res.String(), "walk generation") {
		t.Error("render missing stages")
	}
}
