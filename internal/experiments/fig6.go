package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/ml"
	"repro/internal/synth"
	"repro/internal/textify"
	"repro/internal/walk"
	"repro/internal/word2vec"
)

// Fig6aResult holds the fine-tuning experiment (paper Fig. 6a): default
// embeddings vs fine-tuned embeddings vs the best achievable reference.
type Fig6aResult struct {
	Datasets []string
	// Scores[dataset][series]; series are the Fig. 6a bars.
	Scores map[string]map[string]float64
	Series []string
}

// fineTuneDrop lists, per dataset, the tables a domain expert would drop
// because they carry no signal for the task — the "domain knowledge"
// half of the paper's fine-tuning. Genes keeps all three tables: the
// interactions table looks like noise but is load-bearing, because it is
// what keeps test genes' id tokens shared across multiple rows (and thus
// alive as value nodes).
var fineTuneDrop = map[string][]string{
	"genes":     nil,
	"financial": {"client", "disp", "card"},
	"ftp":       nil, // only two tables; nothing to drop
}

// Fig6a reproduces the fine-tuning comparison on three classification
// datasets. "max reported" is stood in for by the best Full+FE score
// across models with a wider grid search (the synthetic analog of the
// bespoke hand-tuned methods the paper cites); fine-tuned embeddings
// drop irrelevant tables and grid-search the downstream model.
func Fig6a(opts Options) (*Fig6aResult, error) {
	opts = opts.withDefaults()
	specs := []*synth.Spec{
		synth.Genes(synth.GenesOptions{Scale: opts.Scale, Seed: opts.Seed}),
		synth.Financial(synth.FinancialOptions{Scale: opts.Scale, Seed: opts.Seed + 3}),
		synth.FTP(synth.FTPOptions{Scale: opts.Scale, Seed: opts.Seed + 2}),
	}
	series := []string{"max reported", "emb mf", "emb rw", "emb mf fine-tuned", "emb rw fine-tuned"}
	res := &Fig6aResult{Series: series, Scores: make(map[string]map[string]float64)}
	for _, spec := range specs {
		res.Datasets = append(res.Datasets, spec.Name)
		scores := make(map[string]float64)
		res.Scores[spec.Name] = scores

		// Reference: best Full+FE over models.
		fs, err := PrepareBaseline(spec, BaselineFullFE, opts)
		if err != nil {
			return nil, fmt.Errorf("fig6a %s: %w", spec.Name, err)
		}
		best := 0.0
		for _, m := range []Model{ModelRF, ModelLR, ModelNN} {
			if s := fs.Score(m, opts.Seed); s > best {
				best = s
			}
		}
		scores["max reported"] = best

		for _, method := range []embed.Method{embed.MethodMF, embed.MethodRW} {
			name := "emb mf"
			if method == embed.MethodRW {
				name = "emb rw"
			}
			plain, err := embeddingScore(spec, method, opts, nil, false)
			if err != nil {
				return nil, fmt.Errorf("fig6a %s/%s: %w", spec.Name, method, err)
			}
			scores[name] = plain
			tuned, err := embeddingScore(spec, method, opts, fineTuneDrop[spec.Name], true)
			if err != nil {
				return nil, fmt.Errorf("fig6a %s/%s tuned: %w", spec.Name, method, err)
			}
			scores[name+" fine-tuned"] = tuned
		}
	}
	return res, nil
}

// embeddingScore evaluates an embedding baseline, optionally dropping
// tables (domain knowledge) and grid-searching the downstream model.
func embeddingScore(spec *synth.Spec, method embed.Method, opts Options, dropTables []string, gridSearch bool) (float64, error) {
	s := *spec
	if len(dropTables) > 0 {
		s.DB = spec.DB.Without(dropTables...)
	}
	cfg := core.Config{Dim: opts.Dim, Seed: opts.Seed, Method: method, RW: rwOptions()}
	fs, err := prepareWithConfig(&s, cfg, opts)
	if err != nil {
		return 0, err
	}
	if !gridSearch {
		best := 0.0
		for _, m := range []Model{ModelRF, ModelLR, ModelNN} {
			if sc := fs.Score(m, opts.Seed); sc > best {
				best = sc
			}
		}
		return best, nil
	}
	// Wider search: random-forest and logistic grids via k-fold CV on
	// the training split, then scored on the test split.
	std := ml.FitStandardizer(fs.XTrain)
	xTrS, xTeS := std.Transform(fs.XTrain), std.Transform(fs.XTest)

	bestScore := 0.0
	rfGrid := ml.Grid(map[string][]float64{"trees": {40, 80}, "minleaf": {1, 3}})
	p, _ := ml.GridSearchClassifier(fs.XTrain, fs.YClassTrain, rfGrid, 3, opts.Seed, func(p ml.Params) ml.Classifier {
		return &ml.RandomForest{NumTrees: int(p["trees"]), MinLeaf: int(p["minleaf"]), Seed: opts.Seed}
	})
	rf := &ml.RandomForest{NumTrees: int(p["trees"]), MinLeaf: int(p["minleaf"]), Seed: opts.Seed}
	rf.Fit(fs.XTrain, fs.YClassTrain)
	if s := ml.Accuracy(rf.Predict(fs.XTest), fs.YClassTest); s > bestScore {
		bestScore = s
	}

	lrGrid := ml.Grid(map[string][]float64{"alpha": {1e-5, 1e-4, 1e-3}})
	p, _ = ml.GridSearchClassifier(xTrS, fs.YClassTrain, lrGrid, 3, opts.Seed, func(p ml.Params) ml.Classifier {
		return &ml.LogisticRegression{Alpha: p["alpha"], Epochs: 40, Seed: opts.Seed}
	})
	lr := &ml.LogisticRegression{Alpha: p["alpha"], Epochs: 60, Seed: opts.Seed}
	lr.Fit(xTrS, fs.YClassTrain)
	if s := ml.Accuracy(lr.Predict(xTeS), fs.YClassTest); s > bestScore {
		bestScore = s
	}
	return bestScore, nil
}

// String renders the Fig. 6a bars.
func (r *Fig6aResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 6a — fine-tuning embeddings vs max reported (accuracy)\n")
	headers := append([]string{"dataset"}, r.Series...)
	var rows [][]string
	for _, d := range r.Datasets {
		row := []string{d}
		for _, s := range r.Series {
			row = append(row, f3(r.Scores[d][s]))
		}
		rows = append(rows, row)
	}
	b.WriteString(renderTable(headers, rows))
	return b.String()
}

// Fig6bcResult is the per-stage performance profile of Fig. 6b/6c.
type Fig6bcResult struct {
	// Stages per method with wall-clock duration and share.
	MF []StageTime
	RW []StageTime
}

// StageTime is one pipeline stage's cost.
type StageTime struct {
	Stage    string
	Duration time.Duration
	Share    float64
}

// Fig6bc profiles the pipeline stages on a mid-size dataset: for MF —
// textification, graph construction, factorization; for RW —
// textification, graph construction, walk generation, SGNS training.
func Fig6bc(opts Options) (*Fig6bcResult, error) {
	opts = opts.withDefaults()
	spec := synth.Financial(synth.FinancialOptions{Scale: opts.Scale, Seed: opts.Seed + 3})

	start := time.Now()
	model, err := textify.Fit(spec.DB, textify.Options{})
	if err != nil {
		return nil, err
	}
	tokenized, err := model.TransformAll(spec.DB)
	if err != nil {
		return nil, err
	}
	textifyDur := time.Since(start)

	start = time.Now()
	g, _ := graph.Build(tokenized, graph.Options{})
	graphDur := time.Since(start)

	start = time.Now()
	embed.MF(g, embed.MFOptions{Dim: opts.Dim, Seed: opts.Seed})
	mfDur := time.Since(start)

	rw := rwOptions()
	start = time.Now()
	corpus := walk.Generate(g, walk.Options{
		WalkLength: rw.WalkLength, WalksPerNode: rw.WalksPerNode, Seed: opts.Seed,
	})
	walkDur := time.Since(start)

	start = time.Now()
	word2vec.Train(corpus.Walks, g.NumNodes(), word2vec.Options{
		Dim: opts.Dim, Epochs: rw.Epochs, Seed: opts.Seed,
	})
	trainDur := time.Since(start)

	res := &Fig6bcResult{
		MF: shares([]StageTime{
			{Stage: "textification", Duration: textifyDur},
			{Stage: "graph construction", Duration: graphDur},
			{Stage: "matrix factorization", Duration: mfDur},
		}),
		RW: shares([]StageTime{
			{Stage: "textification", Duration: textifyDur},
			{Stage: "graph construction", Duration: graphDur},
			{Stage: "walk generation", Duration: walkDur},
			{Stage: "embedding training", Duration: trainDur},
		}),
	}
	return res, nil
}

func shares(stages []StageTime) []StageTime {
	var total time.Duration
	for _, s := range stages {
		total += s.Duration
	}
	for i := range stages {
		if total > 0 {
			stages[i].Share = float64(stages[i].Duration) / float64(total)
		}
	}
	return stages
}

// String renders both profiles.
func (r *Fig6bcResult) String() string {
	var b strings.Builder
	render := func(title string, stages []StageTime) {
		fmt.Fprintf(&b, "Fig 6 — performance profile (%s)\n", title)
		var rows [][]string
		for _, s := range stages {
			rows = append(rows, []string{s.Stage, s.Duration.Round(time.Millisecond).String(), fmt.Sprintf("%.1f%%", 100*s.Share)})
		}
		b.WriteString(renderTable([]string{"stage", "time", "share"}, rows))
		b.WriteByte('\n')
	}
	render("MF, Fig 6c", r.MF)
	render("RW, Fig 6b", r.RW)
	return b.String()
}
