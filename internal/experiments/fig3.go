package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/ml"
	"repro/internal/synth"
	"repro/internal/textify"
)

// Fig3Result holds the noise-robustness experiment of paper Fig. 3:
// R² of recovering the clean embedding E_clean from the noisy E_all as
// the share of injected white-noise attributes grows.
type Fig3Result struct {
	// NoisePercent[i] is the share of injected noisy attributes.
	NoisePercent []float64
	// R2Linear[i] and R2NN[i] are the test R² of the linear map and
	// the fully connected network at that noise level.
	R2Linear []float64
	R2NN     []float64
}

// Fig3 reproduces the experiment: build E_clean on the STUDENT dataset,
// then for increasing K inject K white-noise attributes into every
// table, rebuild E_all, train a mapping from shared tokens' E_all
// vectors to their E_clean vectors on 80% of the tokens, and report R²
// on the remaining 20%.
func Fig3(opts Options) (*Fig3Result, error) {
	opts = opts.withDefaults()
	students := int(500 * (opts.Scale / 0.15))
	if students < 150 {
		students = 150
	}
	cleanSpec := synth.Student(synth.StudentOptions{Students: students, Seed: opts.Seed})
	// The paper's setup bins the injected white-noise values with bin
	// size 10 so they induce spurious edges between row nodes.
	cfg := core.Config{Method: embed.MethodMF, Dim: opts.Dim, Seed: opts.Seed,
		Textify: textify.Options{BinCount: 10}}
	clean, err := core.BuildEmbedding(cleanSpec.DB, cfg)
	if err != nil {
		return nil, fmt.Errorf("fig3 clean: %w", err)
	}

	res := &Fig3Result{}
	baseAttrs := cleanSpec.DB.TotalAttributes()
	for _, k := range []int{0, 1, 2, 4, 8} {
		noisySpec := synth.Student(synth.StudentOptions{Students: students, Seed: opts.Seed, NoisyAttrs: k})
		all, err := core.BuildEmbedding(noisySpec.DB, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig3 noisy k=%d: %w", k, err)
		}
		r2lin, r2nn := recoverEmbedding(all.Embedding, clean.Embedding, opts.Seed)
		noisePct := float64(3*k) / float64(baseAttrs+3*k) * 100
		res.NoisePercent = append(res.NoisePercent, noisePct)
		res.R2Linear = append(res.R2Linear, r2lin)
		res.R2NN = append(res.R2NN, r2nn)
	}
	return res, nil
}

// recoverEmbedding fits the mapping M: E_all(t) -> E_clean(t) on 80% of
// shared tokens and returns test R² for a linear map and a 1-hidden-
// layer network.
func recoverEmbedding(all, clean *embed.Embedding, seed int64) (r2lin, r2nn float64) {
	var x, y [][]float64
	for _, name := range clean.SortedNames() {
		va, ok := all.Vector(name)
		if !ok {
			continue
		}
		vc, _ := clean.Vector(name)
		x = append(x, va)
		y = append(y, vc)
	}
	split := ml.TrainTestSplit(len(x), 0.2, seed)
	xTr, xTe := ml.SelectRows(x, split.Train), ml.SelectRows(x, split.Test)
	var yTr, yTe [][]float64
	for _, i := range split.Train {
		yTr = append(yTr, y[i])
	}
	for _, i := range split.Test {
		yTe = append(yTe, y[i])
	}

	lin := &ml.MultiOutput{New: func(int) ml.Regressor { return &ml.LinearRegression{L2: 1e-4} }}
	lin.Fit(xTr, yTr)
	r2lin = ml.R2Multi(lin.Predict(xTe), yTe)

	nn := &ml.MLP{Hidden: 64, Epochs: 60, Seed: seed}
	nn.FitMultiRegression(xTr, yTr)
	r2nn = ml.R2Multi(nn.PredictMultiRegression(xTe), yTe)
	return r2lin, r2nn
}

// String renders the Fig. 3 series.
func (r *Fig3Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 3 — % noisy attributes vs R² of recovering E_clean from E_all (higher is better)\n")
	var rows [][]string
	for i := range r.NoisePercent {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", r.NoisePercent[i]),
			f3(r.R2Linear[i]),
			f3(r.R2NN[i]),
		})
	}
	b.WriteString(renderTable([]string{"noisy attrs", "R2 linear", "R2 neural net"}, rows))
	return b.String()
}
