package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/ml"
	"repro/internal/synth"
	"repro/internal/textify"
)

// EmbMethod names an embedding construction strategy compared in paper
// Table 5.
type EmbMethod string

const (
	EmbWord2Vec EmbMethod = "word2vec"
	EmbNode2Vec EmbMethod = "node2vec"
	EmbEmbDI    EmbMethod = "embdi"
	EmbDeepER   EmbMethod = "deeper"
	EmbLevaMF   EmbMethod = "emb. mf"
	EmbLevaRW   EmbMethod = "emb. rw"
)

// Table5Methods lists the comparison set in the paper's row order.
var Table5Methods = []EmbMethod{
	EmbWord2Vec, EmbNode2Vec, EmbEmbDI, EmbDeepER, EmbLevaMF, EmbLevaRW,
}

// Table5Result holds classification accuracy per embedding method and
// dataset.
type Table5Result struct {
	Datasets []string
	Methods  []EmbMethod
	Scores   map[EmbMethod]map[string]float64
}

// Table5 compares embedding construction strategies under an identical
// protocol: same split, same textification, same SGNS trainer where one
// is used, same downstream random forest. Only the corpus/graph
// construction varies — the paper's point that Leva's specific graph
// construction, refinement and weighting is what buys the accuracy.
func Table5(opts Options) (*Table5Result, error) {
	opts = opts.withDefaults()
	specs := []*synth.Spec{
		synth.Genes(synth.GenesOptions{Scale: opts.Scale, Seed: opts.Seed}),
		synth.Financial(synth.FinancialOptions{Scale: opts.Scale, Seed: opts.Seed + 3}),
		synth.FTP(synth.FTPOptions{Scale: opts.Scale, Seed: opts.Seed + 2}),
	}
	res := &Table5Result{Methods: Table5Methods, Scores: make(map[EmbMethod]map[string]float64)}
	for _, m := range Table5Methods {
		res.Scores[m] = make(map[string]float64)
	}
	for _, spec := range specs {
		res.Datasets = append(res.Datasets, spec.Name)
		for _, m := range Table5Methods {
			acc, err := evalEmbMethod(spec, m, opts)
			if err != nil {
				return nil, fmt.Errorf("table5 %s/%s: %w", spec.Name, m, err)
			}
			res.Scores[m][spec.Name] = acc
		}
	}
	return res, nil
}

// evalEmbMethod runs the shared protocol for one method on one dataset.
func evalEmbMethod(spec *synth.Spec, method EmbMethod, opts Options) (float64, error) {
	switch method {
	case EmbLevaMF:
		fs, err := PrepareBaseline(spec, BaselineEmbMF, opts)
		if err != nil {
			return 0, err
		}
		return fs.Score(ModelRF, opts.Seed), nil
	case EmbLevaRW:
		fs, err := PrepareBaseline(spec, BaselineEmbRW, opts)
		if err != nil {
			return 0, err
		}
		return fs.Score(ModelRF, opts.Seed), nil
	}

	base := spec.DB.Table(spec.BaseTable)
	split := ml.TrainTestSplit(base.NumRows(), testFraction, opts.Seed)
	trainBase := base.SelectRows(split.Train).DropColumns(spec.Target)
	embDB := spec.DB.Without(spec.BaseTable)
	embDB.Add(trainBase)

	model, err := textify.Fit(embDB, textify.Options{})
	if err != nil {
		return 0, err
	}
	tokenized, err := model.TransformAll(embDB)
	if err != nil {
		return 0, err
	}
	bopts := embed.BaselineOptions{Dim: opts.Dim, Seed: opts.Seed,
		WalkLength: 40, WalksPerNode: 6, Epochs: 3}
	var e *embed.Embedding
	switch method {
	case EmbWord2Vec:
		e = embed.Word2VecDirect(tokenized, bopts)
	case EmbNode2Vec:
		e = embed.Node2Vec(tokenized, bopts)
	case EmbEmbDI:
		e = embed.EmbDIStyle(tokenized, bopts)
	case EmbDeepER:
		e = embed.DeepERStyle(tokenized, bopts)
	default:
		return 0, fmt.Errorf("unknown method %q", method)
	}

	// Deploy through the same featurizer Leva uses: a synthetic
	// Result carrying this embedding and the shared textifier.
	r := &core.Result{Embedding: e, Textifier: model,
		Config: core.Config{Featurization: core.RowPlusValue}}
	xTrain, err := r.Featurize(trainBase, spec.BaseTable, nil, func(i int) int { return i })
	if err != nil {
		return 0, err
	}
	testBase := base.SelectRows(split.Test)
	xTest, err := r.Featurize(testBase, spec.BaseTable, []string{spec.Target}, func(i int) int { return -1 })
	if err != nil {
		return 0, err
	}
	yAll, err := encodeLabels(base, spec.Target)
	if err != nil {
		return 0, err
	}
	return fitScoreClass(ModelRF, opts.Seed, xTrain,
		ml.SelectLabels(yAll, split.Train), xTest, ml.SelectLabels(yAll, split.Test)), nil
}

func encodeLabels(t *dataset.Table, target string) ([]int, error) {
	col := t.Column(target)
	enc := ml.FitLabels(col)
	return enc.Encode(col.Values)
}

// String renders the paper's Table 5 layout.
func (r *Table5Result) String() string {
	var b strings.Builder
	b.WriteString("Table 5 — classification accuracy by embedding method (random forest)\n")
	headers := append([]string{"emb. method"}, r.Datasets...)
	var rows [][]string
	for _, m := range r.Methods {
		row := []string{string(m)}
		for _, d := range r.Datasets {
			row = append(row, f3(r.Scores[m][d]))
		}
		rows = append(rows, row)
	}
	b.WriteString(renderTable(headers, rows))
	return b.String()
}
