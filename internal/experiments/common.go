// Package experiments contains one runner per table and figure of the
// paper's evaluation section. Each runner regenerates the corresponding
// rows/series on the synthetic datasets, returns a structured result,
// and renders a paper-style text table. Default workload scales are
// sized for a small machine; raise Options.Scale to approach the
// published dataset sizes.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/discovery"
	"repro/internal/embed"
	"repro/internal/join"
	"repro/internal/ml"
	"repro/internal/synth"
)

// Options are shared experiment knobs.
type Options struct {
	// Scale multiplies dataset sizes. Default 0.15 (laptop-sized);
	// 1.0 reproduces the paper's published row counts.
	Scale float64
	// Seed drives every randomized stage.
	Seed int64
	// Dim is the embedding size. Default 64 (the paper uses 100;
	// smaller is faster and the orderings are insensitive to it).
	Dim int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.15
	}
	if o.Dim <= 0 {
		o.Dim = 64
	}
	return o
}

// Model names a downstream model family.
type Model string

const (
	// ModelRF is a random forest (classification or regression).
	ModelRF Model = "rf"
	// ModelLR is logistic regression with ElasticNet (classification)
	// or plain linear regression (regression).
	ModelLR Model = "lr"
	// ModelEN is ElasticNet linear regression (regression only).
	ModelEN Model = "en"
	// ModelNN is the 2-layer fully connected network.
	ModelNN Model = "nn"
)

// Baseline names a training-data assembly strategy from Section 6.1.
type Baseline string

const (
	// BaselineBase trains on the base table only.
	BaselineBase Baseline = "base"
	// BaselineFull trains on the ground-truth joined Full table.
	BaselineFull Baseline = "full"
	// BaselineFullFE is Full plus ARDA-style feature selection.
	BaselineFullFE Baseline = "full+fe"
	// BaselineDisc joins whatever the discovery system finds.
	BaselineDisc Baseline = "disc"
	// BaselineEmbMF and BaselineEmbRW are Leva's embeddings.
	BaselineEmbMF Baseline = "emb-mf"
	BaselineEmbRW Baseline = "emb-rw"
)

// AllBaselines lists the Fig. 4/5 comparison set in display order.
var AllBaselines = []Baseline{
	BaselineBase, BaselineDisc, BaselineFull, BaselineFullFE,
	BaselineEmbMF, BaselineEmbRW,
}

const testFraction = 0.2

// newClassifier builds a fresh model with budget-friendly settings.
func newClassifier(m Model, seed int64) ml.Classifier {
	switch m {
	case ModelRF:
		return &ml.RandomForest{NumTrees: 40, MinLeaf: 2, Seed: seed}
	case ModelLR:
		return &ml.LogisticRegression{Alpha: 1e-4, L1Ratio: 0.5, Epochs: 40, Seed: seed}
	case ModelNN:
		return &ml.MLP{Hidden: 64, Epochs: 40, Seed: seed}
	default:
		panic(fmt.Sprintf("experiments: unknown classifier %q", m))
	}
}

// newRegressor builds a fresh regression model.
func newRegressor(m Model, seed int64) ml.Regressor {
	switch m {
	case ModelRF:
		return &ml.RandomForest{NumTrees: 40, MinLeaf: 2, Seed: seed}
	case ModelLR:
		return &ml.LinearRegression{L2: 1e-6}
	case ModelEN:
		return &ml.ElasticNetRegression{Alpha: 0.01, L1Ratio: 0.5}
	case ModelNN:
		return &ml.MLP{Hidden: 64, Epochs: 60, Seed: seed}
	default:
		panic(fmt.Sprintf("experiments: unknown regressor %q", m))
	}
}

// standardized reports whether the model family needs feature scaling.
func standardized(m Model) bool { return m != ModelRF }

// rwOptions returns budget-friendly RW settings for experiment runs.
func rwOptions() embed.RWOptions {
	return embed.RWOptions{WalkLength: 40, WalksPerNode: 6, Epochs: 3}
}

// FeatureSet is a prepared train/test featurization for one baseline;
// it can be scored against any downstream model.
type FeatureSet struct {
	XTrain, XTest           [][]float64
	YClassTrain, YClassTest []int
	YRegTrain, YRegTest     []float64
	Classification          bool
}

// Score fits the model and returns accuracy (classification) or MAE
// (regression) on the test rows.
func (fs *FeatureSet) Score(model Model, seed int64) float64 {
	if fs.Classification {
		return fitScoreClass(model, seed, fs.XTrain, fs.YClassTrain, fs.XTest, fs.YClassTest)
	}
	return fitScoreReg(model, seed, fs.XTrain, fs.YRegTrain, fs.XTest, fs.YRegTest)
}

// EvalTask evaluates one (baseline, model) pair on a task and returns
// accuracy for classification or MAE for regression, measured on the
// held-out test rows. Every baseline shares the same split.
func EvalTask(spec *synth.Spec, baseline Baseline, model Model, opts Options) (float64, error) {
	fs, err := PrepareBaseline(spec, baseline, opts)
	if err != nil {
		return 0, err
	}
	return fs.Score(model, opts.withDefaults().Seed), nil
}

// PrepareBaseline assembles and featurizes the training data for one
// baseline. The expensive work (joins, discovery, embedding training)
// happens here, once; callers score multiple models against the result.
func PrepareBaseline(spec *synth.Spec, baseline Baseline, opts Options) (*FeatureSet, error) {
	opts = opts.withDefaults()
	switch baseline {
	case BaselineEmbMF, BaselineEmbRW:
		return prepareEmbedding(spec, baseline, opts, core.RowPlusValue)
	default:
		return prepareTabular(spec, baseline, opts)
	}
}

func prepareEmbedding(spec *synth.Spec, baseline Baseline, opts Options, feat core.FeaturizationMode) (*FeatureSet, error) {
	cfg := core.Config{
		Dim:           opts.Dim,
		Seed:          opts.Seed,
		RW:            rwOptions(),
		Featurization: feat,
	}
	if baseline == BaselineEmbMF {
		cfg.Method = embed.MethodMF
	} else {
		cfg.Method = embed.MethodRW
	}
	return prepareWithConfig(spec, cfg, opts)
}

// prepareWithConfig runs Leva end-to-end under an explicit pipeline
// config; ablation experiments use it to vary single knobs.
func prepareWithConfig(spec *synth.Spec, cfg core.Config, opts Options) (*FeatureSet, error) {
	opts = opts.withDefaults()
	task := core.Task{
		DB: spec.DB, BaseTable: spec.BaseTable, Target: spec.Target,
		TestFraction: testFraction, Seed: opts.Seed,
	}
	if spec.Classification {
		sd, err := core.PrepareClassification(task, cfg)
		if err != nil {
			return nil, err
		}
		return &FeatureSet{
			XTrain: sd.XTrain, XTest: sd.XTest,
			YClassTrain: sd.YClassTrain, YClassTest: sd.YClassTest,
			Classification: true,
		}, nil
	}
	sd, err := core.PrepareRegression(task, cfg)
	if err != nil {
		return nil, err
	}
	return &FeatureSet{
		XTrain: sd.XTrain, XTest: sd.XTest,
		YRegTrain: sd.YRegTrain, YRegTest: sd.YRegTest,
	}, nil
}

func prepareTabular(spec *synth.Spec, baseline Baseline, opts Options) (*FeatureSet, error) {
	table, err := assembleTable(spec, baseline)
	if err != nil {
		return nil, err
	}
	split := ml.TrainTestSplit(table.NumRows(), testFraction, opts.Seed)
	trainT := table.SelectRows(split.Train)
	testT := table.SelectRows(split.Test)

	enc := ml.FitOneHot(trainT, spec.Target, 64)
	xTrain := enc.Transform(trainT)
	xTest := enc.Transform(testT)

	fs := &FeatureSet{XTrain: xTrain, XTest: xTest, Classification: spec.Classification}
	if spec.Classification {
		labels := ml.FitLabels(table.Column(spec.Target))
		all, err := labels.Encode(table.Column(spec.Target).Values)
		if err != nil {
			return nil, err
		}
		fs.YClassTrain = ml.SelectLabels(all, split.Train)
		fs.YClassTest = ml.SelectLabels(all, split.Test)
		if baseline == BaselineFullFE {
			cols := ml.SelectFeatures(fs.XTrain, fs.YClassTrain, nil, 0, opts.Seed)
			fs.XTrain = ml.ProjectColumns(fs.XTrain, cols)
			fs.XTest = ml.ProjectColumns(fs.XTest, cols)
		}
		return fs, nil
	}

	yAll := make([]float64, table.NumRows())
	for i, v := range table.Column(spec.Target).Values {
		f, ok := v.Float()
		if !ok {
			return nil, fmt.Errorf("experiments: non-numeric target row %d", i)
		}
		yAll[i] = f
	}
	fs.YRegTrain = ml.SelectFloats(yAll, split.Train)
	fs.YRegTest = ml.SelectFloats(yAll, split.Test)
	if baseline == BaselineFullFE {
		cols := ml.SelectFeatures(fs.XTrain, nil, fs.YRegTrain, 0, opts.Seed)
		fs.XTrain = ml.ProjectColumns(fs.XTrain, cols)
		fs.XTest = ml.ProjectColumns(fs.XTest, cols)
	}
	return fs, nil
}

func assembleTable(spec *synth.Spec, baseline Baseline) (*dataset.Table, error) {
	switch baseline {
	case BaselineBase:
		return spec.DB.Table(spec.BaseTable), nil
	case BaselineFull, BaselineFullFE:
		return join.FullTable(spec.DB, spec.BaseTable, join.Options{})
	case BaselineDisc:
		t, _ := discovery.Materialize(spec.DB, spec.BaseTable, discovery.Options{})
		if t == nil {
			return nil, fmt.Errorf("experiments: discovery found no base table")
		}
		return t, nil
	default:
		return nil, fmt.Errorf("experiments: %q is not a tabular baseline", baseline)
	}
}

func fitScoreClass(model Model, seed int64, xTrain [][]float64, yTrain []int, xTest [][]float64, yTest []int) float64 {
	if standardized(model) {
		s := ml.FitStandardizer(xTrain)
		xTrain, xTest = s.Transform(xTrain), s.Transform(xTest)
	}
	c := newClassifier(model, seed)
	c.Fit(xTrain, yTrain)
	return ml.Accuracy(c.Predict(xTest), yTest)
}

func fitScoreReg(model Model, seed int64, xTrain [][]float64, yTrain []float64, xTest [][]float64, yTest []float64) float64 {
	if standardized(model) {
		s := ml.FitStandardizer(xTrain)
		xTrain, xTest = s.Transform(xTrain), s.Transform(xTest)
	}
	r := newRegressor(model, seed)
	r.FitRegression(xTrain, yTrain)
	return ml.MAE(r.PredictRegression(xTest), yTest)
}

// renderTable renders an aligned text table.
func renderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
