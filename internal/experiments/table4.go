package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// Table4Result summarizes the generated datasets the way paper Table 4
// summarizes the originals: table count, rows, task type, missing data,
// and the fraction of string columns. Running it verifies the synthetic
// substitutes actually exhibit the published shapes.
type Table4Result struct {
	Rows []Table4Row
}

// Table4Row is one dataset summary line.
type Table4Row struct {
	Name           string
	Tables         int
	Rows           int
	Classification bool
	MissingData    bool
	StringColumns  float64
}

// Table4 generates every evaluation dataset at the experiment scale and
// measures its characteristics.
func Table4(opts Options) (*Table4Result, error) {
	opts = opts.withDefaults()
	specs := append(classificationSpecs(opts), regressionSpecs(opts)...)
	res := &Table4Result{}
	for _, spec := range specs {
		res.Rows = append(res.Rows, Table4Row{
			Name:           spec.Name,
			Tables:         len(spec.DB.Tables),
			Rows:           spec.DB.TotalRows(),
			Classification: spec.Classification,
			MissingData:    hasDirtyMarkers(spec.DB),
			StringColumns:  stringFraction(spec.DB),
		})
	}
	return res, nil
}

// hasDirtyMarkers detects the dirty missing representations the
// generators inject.
func hasDirtyMarkers(db *dataset.Database) bool {
	markers := map[string]bool{"?": true, "null": true, "n/a": true, "-": true, "missing": true}
	for _, t := range db.Tables {
		for _, c := range t.Columns {
			for _, v := range c.Values {
				if v.Kind == dataset.KindString && markers[v.Str] {
					return true
				}
			}
		}
	}
	return false
}

// stringFraction is the share of columns whose non-null values are
// predominantly strings.
func stringFraction(db *dataset.Database) float64 {
	str, total := 0, 0
	for _, t := range db.Tables {
		for _, c := range t.Columns {
			total++
			nonNull, strCount := 0, 0
			for _, v := range c.Values {
				if v.IsNull() {
					continue
				}
				nonNull++
				if v.Kind == dataset.KindString {
					strCount++
				}
			}
			if nonNull > 0 && float64(strCount) > 0.5*float64(nonNull) {
				str++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(str) / float64(total)
}

// String renders the paper's Table 4 layout.
func (r *Table4Result) String() string {
	var b strings.Builder
	b.WriteString("Table 4 — generated dataset characteristics\n")
	var rows [][]string
	for _, row := range r.Rows {
		task := "R"
		if row.Classification {
			task = "C"
		}
		missing := "N"
		if row.MissingData {
			missing = "Y"
		}
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%d", row.Tables),
			fmt.Sprintf("%d", row.Rows),
			task,
			missing,
			fmt.Sprintf("%.0f%%", 100*row.StringColumns),
		})
	}
	b.WriteString(renderTable(
		[]string{"name", "#tables", "#rows", "task", "missing", "% string cols"}, rows))
	return b.String()
}
