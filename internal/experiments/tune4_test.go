package experiments

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/synth"
)

// TestTuneWeighting probes the weighting ablation with and without hub
// noise; enable with LEVA_TUNE=1.
func TestTuneWeighting(t *testing.T) {
	if os.Getenv("LEVA_TUNE") == "" {
		t.Skip("set LEVA_TUNE=1 to run the tuning harness")
	}
	opts := Options{Scale: 0.15, Seed: 42, Dim: 64}.withDefaults()
	clean := synth.Genes(synth.GenesOptions{Scale: opts.Scale, Seed: opts.Seed})
	dirty := synth.Genes(synth.GenesOptions{Scale: opts.Scale, Seed: opts.Seed})
	synth.AddFlagColumns(dirty.DB, 3, 3, opts.Seed)
	dirty.Name = "genes+flags"
	for _, spec := range []*synth.Spec{clean, dirty} {
		for _, unweighted := range []bool{false, true} {
			cfg := core.Config{Dim: opts.Dim, Seed: opts.Seed, Method: embed.MethodMF,
				Graph: graph.Options{Unweighted: unweighted}}
			fs, err := prepareWithConfig(spec, cfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-12s unweighted=%-5v rf=%.3f", spec.Name, unweighted, fs.Score(ModelRF, opts.Seed))
		}
	}
}
