package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/synth"
)

// ExtGloVeResult is an extension experiment beyond the paper: the GloVe
// plug-in method against Leva's two first-party methods, demonstrating
// the plug-and-play embedding interface of Section 4.2.
type ExtGloVeResult struct {
	Datasets []string
	Methods  []embed.Method
	Scores   map[string]map[embed.Method]float64
}

// ExtGloVe runs the three embedding methods through the identical
// pipeline (same graph, same deployment, same random forest) on two
// classification datasets.
func ExtGloVe(opts Options) (*ExtGloVeResult, error) {
	opts = opts.withDefaults()
	specs := []*synth.Spec{
		synth.Genes(synth.GenesOptions{Scale: opts.Scale, Seed: opts.Seed}),
		synth.FTP(synth.FTPOptions{Scale: opts.Scale, Seed: opts.Seed + 2}),
	}
	methods := []embed.Method{embed.MethodMF, embed.MethodRW, embed.MethodGloVe}
	res := &ExtGloVeResult{Methods: methods, Scores: make(map[string]map[embed.Method]float64)}
	for _, spec := range specs {
		res.Datasets = append(res.Datasets, spec.Name)
		res.Scores[spec.Name] = make(map[embed.Method]float64)
		for _, m := range methods {
			cfg := core.Config{Dim: opts.Dim, Seed: opts.Seed, Method: m, RW: rwOptions(),
				GloVe: embed.GloVeOptions{WalkLength: 40, WalksPerNode: 6, Epochs: 10}}
			fs, err := prepareWithConfig(spec, cfg, opts)
			if err != nil {
				return nil, fmt.Errorf("ext-glove %s/%s: %w", spec.Name, m, err)
			}
			res.Scores[spec.Name][m] = fs.Score(ModelRF, opts.Seed)
		}
	}
	return res, nil
}

// String renders the comparison.
func (r *ExtGloVeResult) String() string {
	var b strings.Builder
	b.WriteString("Extension — plug-in embedding methods (random forest accuracy)\n")
	headers := []string{"dataset"}
	for _, m := range r.Methods {
		headers = append(headers, string(m))
	}
	var rows [][]string
	for _, d := range r.Datasets {
		row := []string{d}
		for _, m := range r.Methods {
			row = append(row, f3(r.Scores[d][m]))
		}
		rows = append(rows, row)
	}
	b.WriteString(renderTable(headers, rows))
	return b.String()
}
