package experiments

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/synth"
)

// TestTuneMF is a development harness for comparing MF configurations;
// enable with LEVA_TUNE=1.
func TestTuneMF(t *testing.T) {
	if os.Getenv("LEVA_TUNE") == "" {
		t.Skip("set LEVA_TUNE=1 to run the tuning harness")
	}
	opts := Options{Scale: 0.15, Seed: 42, Dim: 64}.withDefaults()
	specs := []*synth.Spec{
		synth.Restbase(synth.RestbaseOptions{Scale: opts.Scale, Seed: opts.Seed + 10}),
		synth.Bio(synth.BioOptions{Scale: opts.Scale, Seed: opts.Seed + 11}),
	}
	configs := []struct {
		name string
		mf   embed.MFOptions
		dim  int
	}{
		{"w2-nocap", embed.MFOptions{Window: 2, PMICap: -1}, 64},
		{"w2-cap3", embed.MFOptions{Window: 2}, 64},
		{"w3-nocap", embed.MFOptions{Window: 3, PMICap: -1}, 64},
		{"w2-cap6", embed.MFOptions{Window: 2, PMICap: 6}, 64},
	}
	for _, spec := range specs {
		for _, c := range configs {
			cfg := core.Config{Dim: c.dim, Seed: opts.Seed, Method: embed.MethodMF, MF: c.mf}
			fs, err := prepareWithConfig(spec, cfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-10s %-16s en=%.3f lr=%.3f", spec.Name, c.name, fs.Score(ModelEN, opts.Seed), fs.Score(ModelLR, opts.Seed))
		}
	}
}
