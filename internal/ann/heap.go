package ann

// candHeap is a binary heap of (distance, id) pairs with the tie-break
// ordering of candLess. min=true pops the closest candidate first (the
// expansion frontier); min=false pops the farthest first (the bounded
// result set, where pop evicts the worst). A hand-rolled heap instead
// of container/heap keeps the hot path free of interface boxing.
type candHeap struct {
	items []cand
	min   bool
}

// before reports whether items[i] should sit above items[j].
func (h *candHeap) before(i, j int) bool {
	if h.min {
		return candLess(h.items[i], h.items[j])
	}
	return candLess(h.items[j], h.items[i])
}

func (h *candHeap) len() int { return len(h.items) }

// peek returns the top without removing it (closest for min, farthest
// for max). Callers check len() first.
func (h *candHeap) peek() cand { return h.items[0] }

func (h *candHeap) push(c cand) {
	h.items = append(h.items, c)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *candHeap) pop() cand {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && h.before(l, best) {
			best = l
		}
		if r < last && h.before(r, best) {
			best = r
		}
		if best == i {
			break
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
	return top
}

// drain empties the heap, returning the items in arbitrary order.
func (h *candHeap) drain() []cand {
	out := h.items
	h.items = nil
	return out
}
