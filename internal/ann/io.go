package ann

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/durable"
)

// On-disk format. An index artifact is a directory holding one payload
// file, index.bin, sealed by the durable MANIFEST.json protocol (per-
// file SHA-256, staged sibling directory, single publish rename), so a
// crash mid-save leaves the old complete index or the new complete
// index — never a hybrid — and any later corruption surfaces as an
// error naming the damaged file.
//
// index.bin layout (all integers little-endian):
//
//	magic        8 bytes  "LEVAHNSW"
//	version      u32      format version (currently 1)
//	metric       u8       0 = cosine, 1 = dot
//	M            u32      build options, for provenance and defaults
//	efConstruct  u32
//	efSearch     u32
//	seed         u64      int64 bits
//	dim          u32
//	n            u32      vector count
//	entry        u32      entry-point node id
//	maxLevel     u32      top layer (levels[entry] == maxLevel)
//	names        n × (u32 byte length + bytes)
//	levels       n × u32
//	links        per node, per layer 0..levels[i]: u32 count + ids
//	vectors      n × dim × f64 bits (normalized for cosine)
//
// Encode is deterministic (the package determinism contract), so equal
// indexes are byte-equal files and the stage cache can address them by
// content fingerprint.

const (
	// FormatVersion is the index.bin format written by Encode.
	FormatVersion = 1
	// IndexFileName is the payload file inside an index directory.
	IndexFileName = "index.bin"

	indexMagic = "LEVAHNSW"
	// Decode guards: bounds a lying header can claim before the length
	// checks against the actual buffer kick in.
	maxNameLen = 1 << 20
	maxDim     = 1 << 20
)

// Named decode errors. Every failure of Decode/Load wraps exactly one
// of these (or an *os.PathError from the filesystem), never panics.
var (
	// ErrBadMagic marks a file that is not an ANN index at all.
	ErrBadMagic = errors.New("ann: not an ANN index file (bad magic)")
	// ErrVersion marks an index written by a newer format revision.
	ErrVersion = errors.New("ann: unsupported ANN index format version")
	// ErrCorrupt marks a truncated or internally inconsistent index.
	ErrCorrupt = errors.New("ann: corrupt or truncated ANN index")
)

// Encode serializes the index. Output is byte-identical for equal
// indexes.
func (ix *Index) Encode() []byte {
	n := len(ix.names)
	size := len(indexMagic) + 4 + 1 + 4*4 + 8 + 4*4
	for _, name := range ix.names {
		size += 4 + len(name)
	}
	size += 4 * n
	for _, ls := range ix.links {
		for _, nbs := range ls {
			size += 4 + 4*len(nbs)
		}
	}
	size += 8 * len(ix.vecs)

	buf := make([]byte, 0, size)
	buf = append(buf, indexMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, FormatVersion)
	if ix.opts.Metric == MetricDot {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.opts.M))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.opts.EfConstruction))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.opts.EfSearch))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ix.opts.Seed))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.dim))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.entry))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.maxLevel))
	for _, name := range ix.names {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(name)))
		buf = append(buf, name...)
	}
	for _, lvl := range ix.levels {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(lvl))
	}
	for _, ls := range ix.links {
		for _, nbs := range ls {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(nbs)))
			for _, nb := range nbs {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(nb))
			}
		}
	}
	for _, v := range ix.vecs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// decoder is a bounds-checked cursor over an index.bin buffer.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s (offset %d)", ErrCorrupt, fmt.Sprintf(format, args...), d.off)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail("need %d bytes, have %d", n, len(d.buf)-d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Decode parses an index.bin buffer, validating every structural
// invariant (id ranges, level caps, entry point, name uniqueness)
// before returning a queryable index. It never panics on hostile
// input; failures wrap ErrBadMagic, ErrVersion, or ErrCorrupt.
func Decode(data []byte) (*Index, error) {
	if len(data) < len(indexMagic) || string(data[:len(indexMagic)]) != indexMagic {
		return nil, ErrBadMagic
	}
	d := &decoder{buf: data, off: len(indexMagic)}
	if v := d.u32(); d.err == nil && v != FormatVersion {
		return nil, fmt.Errorf("%w: file has version %d, this build reads version %d", ErrVersion, v, FormatVersion)
	}
	metric := MetricCosine
	switch d.u8() {
	case 0:
	case 1:
		metric = MetricDot
	default:
		d.fail("unknown metric byte")
	}
	opts := Options{
		M:              int(d.u32()),
		EfConstruction: int(d.u32()),
		EfSearch:       int(d.u32()),
		Seed:           int64(d.u64()),
		Metric:         metric,
	}
	dim := int(d.u32())
	n := int(d.u32())
	entry := int32(d.u32())
	maxLevel := int32(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if opts.M < 2 || opts.EfConstruction < 1 || opts.EfSearch < 1 {
		return nil, fmt.Errorf("%w: implausible build options (M=%d efConstruction=%d efSearch=%d)",
			ErrCorrupt, opts.M, opts.EfConstruction, opts.EfSearch)
	}
	if dim < 1 || dim > maxDim {
		return nil, fmt.Errorf("%w: implausible dimension %d", ErrCorrupt, dim)
	}
	if n < 1 || n > math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible vector count %d", ErrCorrupt, n)
	}
	if entry < 0 || int(entry) >= n || maxLevel < 0 || maxLevel > maxLevelCap {
		return nil, fmt.Errorf("%w: entry point %d / max level %d out of range", ErrCorrupt, entry, maxLevel)
	}

	ix := &Index{
		opts:     opts,
		dim:      dim,
		names:    make([]string, n),
		byName:   make(map[string]int32, n),
		levels:   make([]int32, n),
		links:    make([][][]int32, n),
		entry:    entry,
		maxLevel: maxLevel,
	}
	for i := range ix.names {
		l := d.u32()
		if l > maxNameLen {
			d.fail("name %d claims %d bytes", i, l)
		}
		b := d.take(int(l))
		if d.err != nil {
			return nil, d.err
		}
		name := string(b)
		if _, dup := ix.byName[name]; dup {
			return nil, fmt.Errorf("%w: duplicate name %q", ErrCorrupt, name)
		}
		ix.names[i] = name
		ix.byName[name] = int32(i)
	}
	for i := range ix.levels {
		lvl := int32(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if lvl < 0 || lvl > maxLevel {
			return nil, fmt.Errorf("%w: node %d has level %d above max level %d", ErrCorrupt, i, lvl, maxLevel)
		}
		ix.levels[i] = lvl
	}
	if ix.levels[entry] != maxLevel {
		return nil, fmt.Errorf("%w: entry point %d has level %d, want max level %d",
			ErrCorrupt, entry, ix.levels[entry], maxLevel)
	}
	for i := range ix.links {
		ls := make([][]int32, ix.levels[i]+1)
		for lvl := range ls {
			count := int(d.u32())
			if count > n {
				d.fail("node %d layer %d claims %d links", i, lvl, count)
			}
			if d.err != nil {
				return nil, d.err
			}
			nbs := make([]int32, count)
			for j := range nbs {
				nb := int32(d.u32())
				if d.err != nil {
					return nil, d.err
				}
				if nb < 0 || int(nb) >= n || nb == int32(i) {
					return nil, fmt.Errorf("%w: node %d layer %d links to invalid node %d", ErrCorrupt, i, lvl, nb)
				}
				nbs[j] = nb
			}
			ls[lvl] = nbs
		}
		ix.links[i] = ls
	}
	vecBytes := len(d.buf) - d.off
	if want := n * dim * 8; vecBytes != want {
		return nil, fmt.Errorf("%w: %d bytes of vector data, want %d", ErrCorrupt, vecBytes, want)
	}
	ix.vecs = make([]float64, n*dim)
	for i := range ix.vecs {
		ix.vecs[i] = math.Float64frombits(d.u64())
	}
	if d.err != nil {
		return nil, d.err
	}
	return ix, nil
}

// Save publishes the index to dir crash-safely: index.bin and the
// sealing MANIFEST.json are staged in a sibling directory and swapped
// in with one rename, exactly like SaveBundle. An existing index at
// dir stays readable until the instant the new one replaces it.
func (ix *Index) Save(dir string) error {
	return ix.save(durable.OS(), dir)
}

// save is Save over an injectable filesystem — the seam the
// fault-injection suite uses to prove crash safety.
func (ix *Index) save(fsys durable.FS, dir string) error {
	dir = filepath.Clean(dir)
	data := ix.Encode()
	if _, err := durable.RecoverDir(fsys, dir); err != nil {
		return fmt.Errorf("ann: save index: %w", err)
	}
	staging := dir + durable.StagingSuffix
	if err := fsys.RemoveAll(staging); err != nil {
		return fmt.Errorf("ann: save index: clear staging: %w", err)
	}
	if err := fsys.MkdirAll(staging, 0o755); err != nil {
		return fmt.Errorf("ann: save index: %w", err)
	}
	manifest := &durable.Manifest{FormatVersion: FormatVersion}
	if err := durable.WriteFile(fsys, filepath.Join(staging, IndexFileName), data); err != nil {
		return fmt.Errorf("ann: save index: %w", err)
	}
	manifest.Add(IndexFileName, data)
	if err := durable.WriteManifest(fsys, staging, manifest); err != nil {
		return fmt.Errorf("ann: save index: %w", err)
	}
	if err := durable.SwapDir(fsys, staging, dir); err != nil {
		return fmt.Errorf("ann: save index: %w", err)
	}
	return nil
}

// Load restores an index saved by Save. A publish interrupted between
// its two renames is repaired on the way in; index.bin is verified
// against MANIFEST.json before decoding. Unlike bundles, index
// artifacts have never existed without a manifest, so a missing
// manifest is an error, not a legacy warning.
func Load(dir string) (*Index, error) {
	dir = filepath.Clean(dir)
	if _, err := durable.RecoverDir(durable.OS(), dir); err != nil {
		return nil, fmt.Errorf("ann: load index: %w", err)
	}
	manifest, err := durable.VerifyDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ann: load index: %w", err)
	}
	if manifest.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("%w: manifest records format version %d, this build reads version %d",
			ErrVersion, manifest.FormatVersion, FormatVersion)
	}
	if manifest.Entry(IndexFileName) == nil {
		return nil, fmt.Errorf("%w: %s does not list %s", ErrCorrupt,
			filepath.Join(dir, durable.ManifestName), IndexFileName)
	}
	data, err := os.ReadFile(filepath.Join(dir, IndexFileName))
	if err != nil {
		return nil, fmt.Errorf("ann: load index: %w", err)
	}
	ix, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("ann: load index %s: %w", filepath.Join(dir, IndexFileName), err)
	}
	return ix, nil
}
