package ann_test

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/synth"
)

// benchmarkEmbedding builds the synthetic benchmark embedding once per
// test binary: the student dataset through the real MF pipeline, so
// recall is measured on the vector geometry the paper's pipeline
// actually produces, not on an artificial Gaussian cloud.
var (
	benchOnce sync.Once
	benchEmb  *embed.Embedding
	benchErr  error
)

func benchmarkEmbedding(t testing.TB) *embed.Embedding {
	t.Helper()
	benchOnce.Do(func() {
		spec := synth.Student(synth.StudentOptions{Students: 150, Seed: 7})
		res, err := core.BuildEmbedding(spec.DB, core.Config{Dim: 16, Seed: 7, Method: embed.MethodMF})
		if err != nil {
			benchErr = err
			return
		}
		benchEmb = res.Embedding
	})
	if benchErr != nil {
		t.Fatal(benchErr)
	}
	return benchEmb
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// exactTopK is the brute-force oracle: the k most cosine-similar
// entities to entity qi, self excluded, ties by ascending id — the
// same ordering the index promises.
func exactTopK(e *embed.Embedding, qi, k int) []string {
	q := e.Matrix().Row(qi)
	type hit struct {
		id    int
		score float64
	}
	hits := make([]hit, 0, e.Len()-1)
	for i := 0; i < e.Len(); i++ {
		if i == qi {
			continue
		}
		hits = append(hits, hit{i, cosine(q, e.Matrix().Row(i))})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].score != hits[b].score {
			return hits[a].score > hits[b].score
		}
		return hits[a].id < hits[b].id
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = e.Names()[h.id]
	}
	return out
}

// TestRecallAtTenVsBruteForce is the headline acceptance test: at the
// default efSearch, mean recall@10 against the exact brute-force
// cosine oracle must be at least 0.95 on the synthetic benchmark
// embedding.
func TestRecallAtTenVsBruteForce(t *testing.T) {
	e := benchmarkEmbedding(t)
	if e.Len() < 200 {
		t.Fatalf("benchmark embedding implausibly small: %d entities", e.Len())
	}
	ix, err := ann.Build(e, ann.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	queries, recallSum := 0, 0.0
	for qi := 0; qi < e.Len(); qi += 7 {
		want := exactTopK(e, qi, k)
		got, err := ix.SearchName(e.Names()[qi], k, 0) // ef=0: default efSearch
		if err != nil {
			t.Fatal(err)
		}
		wantSet := make(map[string]bool, len(want))
		for _, n := range want {
			wantSet[n] = true
		}
		overlap := 0
		for _, r := range got {
			if wantSet[r.Name] {
				overlap++
			}
		}
		recallSum += float64(overlap) / float64(len(want))
		queries++
	}
	recall := recallSum / float64(queries)
	t.Logf("recall@%d over %d queries on %d entities: %.4f", k, queries, e.Len(), recall)
	if recall < 0.95 {
		t.Fatalf("recall@%d = %.4f, want >= 0.95", k, recall)
	}
}

func randomVectors(n, dim int, seed int64) (names []string, vecs [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	names = make([]string, n)
	vecs = make([][]float64, n)
	for i := range vecs {
		names[i] = fmt.Sprintf("v%04d", i)
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	return names, vecs
}

// TestBuildByteIdentical pins the determinism contract: two builds of
// the same input encode to byte-identical artifacts, and a decoded
// index re-encodes to the same bytes.
func TestBuildByteIdentical(t *testing.T) {
	names, vecs := randomVectors(400, 12, 42)
	opts := ann.Options{M: 8, EfConstruction: 60, Seed: 9}
	a, err := ann.BuildVectors(names, vecs, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ann.BuildVectors(names, vecs, opts)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Encode(), b.Encode()
	if !bytes.Equal(ea, eb) {
		t.Fatal("two builds of identical input produced different bytes")
	}
	dec, err := ann.Decode(ea)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Encode(), ea) {
		t.Fatal("decode/encode round trip is not byte-identical")
	}
}

// TestBuildArenaMatchesBuildVectors pins the zero-copy Build fast path
// (interned symbol table + shared arena) to the copying BuildVectors
// path: for the same embedding and options the two must produce
// byte-identical Encode output under both metrics — the fast path may
// not change a single bit of the graph.
func TestBuildArenaMatchesBuildVectors(t *testing.T) {
	e := benchmarkEmbedding(t)
	rows := make([][]float64, e.Len())
	for i := range rows {
		rows[i] = append([]float64(nil), e.Matrix().Row(i)...)
	}
	for _, metric := range []ann.Metric{ann.MetricCosine, ann.MetricDot} {
		opts := ann.Options{M: 8, EfConstruction: 60, Seed: 9, Metric: metric}
		fast, err := ann.Build(e, opts)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := ann.BuildVectors(e.Names(), rows, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fast.Encode(), slow.Encode()) {
			t.Fatalf("%s: arena build and copying build produced different indexes", metric)
		}
		// The arena path must leave the embedding's vectors untouched
		// (cosine normalization must copy, dot must not write at all).
		for i := range rows {
			row := e.Matrix().Row(i)
			for j := range row {
				if row[j] != rows[i][j] {
					t.Fatalf("%s: Build mutated the embedding arena at [%d][%d]", metric, i, j)
				}
			}
		}
	}
}

// TestConcurrentSearchIsDeterministic hammers one index from many
// goroutines (run under -race by scripts/check.sh) and requires every
// answer to equal the single-threaded reference.
func TestConcurrentSearchIsDeterministic(t *testing.T) {
	names, vecs := randomVectors(600, 10, 5)
	ix, err := ann.BuildVectors(names, vecs, ann.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const queries = 64
	qs := make([][]float64, queries)
	want := make([][]ann.Result, queries)
	rng := rand.New(rand.NewSource(11))
	for i := range qs {
		q := make([]float64, 10)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		qs[i] = q
		want[i], err = ix.SearchVector(q, 5, 32)
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range qs {
				got, err := ix.SearchVector(q, 5, 32)
				if err != nil {
					errc <- err
					return
				}
				for j := range got {
					if got[j] != want[i][j] {
						errc <- fmt.Errorf("query %d result %d: got %+v, want %+v", i, j, got[j], want[i][j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestSearchNameSemantics(t *testing.T) {
	names, vecs := randomVectors(100, 6, 2)
	ix, err := ann.BuildVectors(names, vecs, ann.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.SearchName("v0007", 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results, want 5", len(res))
	}
	for i, r := range res {
		if r.Name == "v0007" {
			t.Error("SearchName returned the query entity itself")
		}
		if i > 0 && res[i-1].Score < r.Score {
			t.Errorf("results out of order: %v before %v", res[i-1], res[i])
		}
	}
	if _, err := ix.SearchName("no-such-entity", 5, 0); !errors.Is(err, ann.ErrUnknownName) {
		t.Fatalf("unknown name: got %v, want ErrUnknownName", err)
	}
}

func TestSearchVectorValidation(t *testing.T) {
	names, vecs := randomVectors(20, 4, 1)
	ix, err := ann.BuildVectors(names, vecs, ann.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.SearchVector([]float64{1, 2}, 3, 0); err == nil {
		t.Fatal("dim-mismatched query accepted")
	}
	if _, err := ix.SearchVector(make([]float64, 4), 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := ann.BuildVectors(nil, nil, ann.Options{}); err == nil {
		t.Fatal("empty build accepted")
	}
	if _, err := ann.BuildVectors([]string{"a", "a"}, [][]float64{{1}, {2}}, ann.Options{}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := ann.BuildVectors([]string{"a", "b"}, [][]float64{{1}, {2, 3}}, ann.Options{}); err == nil {
		t.Fatal("ragged vectors accepted")
	}
	if _, err := ann.BuildVectors([]string{"a"}, [][]float64{{1}}, ann.Options{Metric: "euclid"}); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

// TestDotMetricOrdersByInnerProduct: under MetricDot longer vectors in
// the query direction must outrank unit ones, which cosine would tie.
func TestDotMetricOrdersByInnerProduct(t *testing.T) {
	names := []string{"long", "short", "orthogonal"}
	vecs := [][]float64{{2, 0}, {1, 0}, {0, 1}}
	ix, err := ann.BuildVectors(names, vecs, ann.Options{Metric: ann.MetricDot})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.SearchVector([]float64{1, 0}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Name != "long" || res[0].Score != 2 {
		t.Fatalf("dot metric top hit = %+v, want long/2", res[0])
	}
	if res[1].Name != "short" || res[1].Score != 1 {
		t.Fatalf("dot metric second hit = %+v, want short/1", res[1])
	}
}
