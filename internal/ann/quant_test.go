package ann

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomCollection builds n clustered random vectors (clustered so
// nearest-neighbor structure is non-trivial).
func randomCollection(n, dim int, seed int64) ([]string, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	const clusters = 16
	centers := make([][]float64, clusters)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64()
		}
	}
	names := make([]string, n)
	vecs := make([][]float64, n)
	for i := range vecs {
		c := centers[i%clusters]
		v := make([]float64, dim)
		for j := range v {
			v[j] = c[j] + 0.3*rng.NormFloat64()
		}
		names[i] = string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + "-" + itoa(i)
		vecs[i] = v
	}
	return names, vecs
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestQuantizedRecall asserts the tentpole accuracy bar: int8
// traversal with float64 re-rank keeps recall@10 >= 0.95 against the
// exact brute-force scan, under both metrics.
func TestQuantizedRecall(t *testing.T) {
	for _, metric := range []Metric{MetricCosine, MetricDot} {
		t.Run(string(metric), func(t *testing.T) {
			names, vecs := randomCollection(2000, 32, 11)
			ix, err := BuildVectors(names, vecs, Options{Metric: metric, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if err := ix.Quantize(nil); err != nil {
				t.Fatal(err)
			}
			if !ix.Quantized() {
				t.Fatal("index not quantized after Quantize")
			}
			rng := rand.New(rand.NewSource(99))
			const k, queries = 10, 50
			hits, want := 0, 0
			for qi := 0; qi < queries; qi++ {
				q := make([]float64, 32)
				for j := range q {
					q[j] = rng.NormFloat64()
				}
				exact, err := ix.BruteForceVector(q, k)
				if err != nil {
					t.Fatal(err)
				}
				approx, err := ix.SearchVector(q, k, 0)
				if err != nil {
					t.Fatal(err)
				}
				truth := make(map[int]bool, k)
				for _, r := range exact {
					truth[r.ID] = true
				}
				for _, r := range approx {
					if truth[r.ID] {
						hits++
					}
				}
				want += len(exact)
			}
			recall := float64(hits) / float64(want)
			if recall < 0.95 {
				t.Fatalf("quantized recall@%d = %.3f, want >= 0.95", k, recall)
			}
			t.Logf("quantized recall@%d = %.3f over %d queries", k, recall, queries)
		})
	}
}

// TestQuantizedDeterministic: quantized searches are as repeatable as
// float ones (integer kernels, candLess tie-breaks).
func TestQuantizedDeterministic(t *testing.T) {
	names, vecs := randomCollection(500, 16, 3)
	ix, err := BuildVectors(names, vecs, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Quantize(nil); err != nil {
		t.Fatal(err)
	}
	a, err := ix.SearchName(names[17], 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix.SearchName(names[17], 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("quantized search not deterministic:\n%v\n%v", a, b)
	}
}

// TestQuantizedScoresExact: because the final beam is re-ranked in
// float64, returned scores are bit-identical to the float index's
// scores for the same hits.
func TestQuantizedScoresExact(t *testing.T) {
	names, vecs := randomCollection(800, 24, 5)
	float, err := BuildVectors(names, vecs, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	quant, err := BuildVectors(names, vecs, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := quant.Quantize(nil); err != nil {
		t.Fatal(err)
	}
	fr, err := float.SearchName(names[3], 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := quant.SearchName(names[3], 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	fscore := make(map[int]float64, len(fr))
	for _, r := range fr {
		fscore[r.ID] = r.Score
	}
	for _, r := range qr {
		if want, ok := fscore[r.ID]; ok && want != r.Score {
			t.Fatalf("hit %d: quantized score %v != float score %v", r.ID, r.Score, want)
		}
	}
}

// TestQuantizeDimGuard: dimensions past the int32-accumulator bound
// are refused instead of silently overflowing.
func TestQuantizeDimGuard(t *testing.T) {
	ix := &Index{dim: maxQuantDim + 1}
	if err := ix.Quantize(nil); err == nil {
		t.Fatal("Quantize accepted a dimension past the int32 accumulation bound")
	}
}
