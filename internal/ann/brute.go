package ann

import (
	"fmt"
	"sort"
)

// BruteForceVector returns the exact k nearest stored vectors to q by
// scanning every vector — no graph traversal, no approximation. It is
// the serving layer's degraded mode: when the HNSW path is circuit-
// broken, an O(n·dim) scan still answers correctly, just slower.
// Ranking and tie-breaking match SearchVector exactly (descending
// score, ties by ascending id).
func (ix *Index) BruteForceVector(q []float64, k int) ([]Result, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("ann: query has dim %d, index has dim %d", len(q), ix.dim)
	}
	if k <= 0 {
		return nil, fmt.Errorf("ann: k must be positive, got %d", k)
	}
	if ix.opts.Metric == MetricCosine {
		qn := make([]float64, len(q))
		copy(qn, q)
		normalize(qn)
		q = qn
	}
	return ix.results(ix.scan(q, k, -1)), nil
}

// BruteForceName returns the exact k nearest neighbors of an indexed
// entity (excluding itself) by full scan — the degraded-mode
// counterpart of SearchName. Unknown names return an error wrapping
// ErrUnknownName.
func (ix *Index) BruteForceName(name string, k int) ([]Result, error) {
	id, ok := ix.idOf(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownName, name)
	}
	if k <= 0 {
		return nil, fmt.Errorf("ann: k must be positive, got %d", k)
	}
	return ix.results(ix.scan(ix.vec(id), k, id)), nil
}

// scan computes the exact top-k candidates for q over every stored
// vector, skipping exclude (pass -1 to keep all). q must already be
// normalized for MetricCosine.
func (ix *Index) scan(q []float64, k int, exclude int32) []cand {
	cands := make([]cand, 0, ix.Len())
	for id := int32(0); int(id) < ix.Len(); id++ {
		if id == exclude {
			continue
		}
		cands = append(cands, cand{ix.dist(q, id), id})
	}
	sort.Slice(cands, func(i, j int) bool { return candLess(cands[i], cands[j]) })
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}
