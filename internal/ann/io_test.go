package ann

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/durable"
)

func testIndex(t testing.TB, n, dim int, seed int64) *Index {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, n)
	vecs := make([][]float64, n)
	for i := range vecs {
		names[i] = fmt.Sprintf("e%04d", i)
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	ix, err := BuildVectors(names, vecs, Options{M: 6, EfConstruction: 40, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ix := testIndex(t, 80, 8, 1)
	data := ix.Encode()
	dec, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Encode(), data) {
		t.Fatal("re-encoded bytes differ from the original")
	}
	q := make([]float64, 8)
	q[0] = 1
	want, err := ix.SearchVector(q, 5, 32)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.SearchVector(q, 5, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decoded index answers differently: got %+v, want %+v", got[i], want[i])
		}
	}
}

// isNamedError reports whether err wraps one of the codec's named
// errors — the contract for every decode failure.
func isNamedError(err error) bool {
	return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrVersion) || errors.Is(err, ErrCorrupt)
}

// TestDecodeTruncation: every proper prefix must be rejected with a
// named error (the vector block length check makes any truncation
// detectable), never a panic.
func TestDecodeTruncation(t *testing.T) {
	data := testIndex(t, 40, 6, 2).Encode()
	for cut := 0; cut < len(data); cut += 13 {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", cut, len(data))
		} else if !isNamedError(err) {
			t.Fatalf("prefix of %d bytes: unnamed error %v", cut, err)
		}
	}
}

// TestDecodeBitFlips walks single-byte corruptions across the file.
// Some flips are structurally undetectable at the codec layer (vector
// payload bits — the manifest catches those at Load time); the codec
// contract is: no panic, and any rejection uses a named error.
func TestDecodeBitFlips(t *testing.T) {
	data := testIndex(t, 40, 6, 3).Encode()
	for off := 0; off < len(data); off += 7 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xFF
		ix, err := Decode(mut)
		if err != nil {
			if !isNamedError(err) {
				t.Fatalf("flip at %d: unnamed error %v", off, err)
			}
			continue
		}
		// Accepted mutations must still round-trip and answer queries.
		if !bytes.Equal(ix.Encode(), mut) {
			t.Fatalf("flip at %d: accepted but does not round-trip", off)
		}
		if _, err := ix.SearchVector(make([]float64, ix.Dim()), 3, 8); err != nil {
			t.Fatalf("flip at %d: accepted but unsearchable: %v", off, err)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ix := testIndex(t, 60, 8, 4)
	dir := filepath.Join(t.TempDir(), "index")
	if err := ix.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(loaded.Encode(), ix.Encode()) {
		t.Fatal("loaded index differs from the saved one")
	}
	// Replacing save: publish a different index over the same dir.
	ix2 := testIndex(t, 60, 8, 5)
	if err := ix2.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(loaded2.Encode(), ix2.Encode()) {
		t.Fatal("replacing save did not publish the new index")
	}
}

// TestLoadRejectsCorruption: a flipped byte in a published index must
// be refused with an error naming index.bin (the manifest check), even
// when the flip lands in vector payload the codec itself cannot vet.
func TestLoadRejectsCorruption(t *testing.T) {
	ix := testIndex(t, 30, 4, 6)
	dir := filepath.Join(t.TempDir(), "index")
	if err := ix.Save(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, IndexFileName)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, len(orig) / 2, len(orig) - 1} {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0xFF
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(dir)
		if err == nil {
			t.Fatalf("index with byte %d flipped loaded cleanly", off)
		}
		if !strings.Contains(err.Error(), IndexFileName) && !strings.Contains(err.Error(), durable.ManifestName) {
			t.Errorf("corruption error names neither %s nor the manifest: %v", IndexFileName, err)
		}
	}
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err != nil {
		t.Fatalf("restored index fails to load: %v", err)
	}
}

// TestLoadRequiresManifest: index artifacts have never existed without
// a manifest, so a missing MANIFEST.json is a hard error.
func TestLoadRequiresManifest(t *testing.T) {
	ix := testIndex(t, 20, 4, 7)
	dir := filepath.Join(t.TempDir(), "index")
	if err := ix.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, durable.ManifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); !errors.Is(err, durable.ErrNoManifest) {
		t.Fatalf("manifest-less index: got %v, want ErrNoManifest", err)
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("loading a nonexistent directory succeeded")
	}
}
