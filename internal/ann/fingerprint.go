package ann

import "repro/internal/fingerprint"

// Fingerprint hashes the fully-defaulted options, so an explicit
// default and an unset zero value key the same cache entry. The domain
// carries the index format version: a codec change invalidates every
// cached index.
func (o Options) Fingerprint() string {
	return fingerprint.JSON("leva/ann-options/v1", o.withDefaults())
}

// IndexFingerprint keys an index artifact by its inputs: the content
// fingerprint of the embedding it indexes (embed.Embedding.Fingerprint)
// and the build options. Deterministic builds make this an equivalence
// proof — equal fingerprints mean byte-equal index files — which is
// what lets the stage cache serve a previously built index.
func IndexFingerprint(embeddingFP string, o Options) string {
	return fingerprint.Combine("leva/ann-index/v1", embeddingFP, o.Fingerprint())
}
