package ann_test

import (
	"errors"
	"testing"

	"repro/internal/ann"
)

// TestBruteForceMatchesOracle pins the degraded-mode scan to the same
// exact-cosine oracle the recall test uses: BruteForceName must return
// the oracle's top-k verbatim (it IS exact), in the same order.
func TestBruteForceMatchesOracle(t *testing.T) {
	e := benchmarkEmbedding(t)
	ix, err := ann.Build(e, ann.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	for qi := 0; qi < e.Len(); qi += 13 {
		want := exactTopK(e, qi, k)
		got, err := ix.BruteForceName(e.Names()[qi], k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d hits, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].Name != want[i] {
				t.Fatalf("query %d hit %d: got %q, want %q", qi, i, got[i].Name, want[i])
			}
		}
	}
}

func TestBruteForceVector(t *testing.T) {
	names, vecs := randomVectors(64, 8, 5)
	ix, err := ann.BuildVectors(names, vecs, ann.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.BruteForceVector(vecs[3], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d hits, want 5", len(got))
	}
	// Querying with a stored vector: that vector is its own best match
	// (score ~1 under cosine), and scores are non-increasing.
	if got[0].Name != names[3] {
		t.Fatalf("best hit = %q, want %q", got[0].Name, names[3])
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("scores not non-increasing at %d: %v then %v", i, got[i-1].Score, got[i].Score)
		}
	}

	if _, err := ix.BruteForceVector(vecs[0][:4], 5); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := ix.BruteForceVector(vecs[0], 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestBruteForceNameSemantics(t *testing.T) {
	names, vecs := randomVectors(32, 8, 9)
	ix, err := ann.BuildVectors(names, vecs, ann.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.BruteForceName(names[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.Name == names[0] {
			t.Fatal("self returned as its own neighbor")
		}
	}
	// k beyond the collection clamps to n-1.
	all, err := ix.BruteForceName(names[0], 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(names)-1 {
		t.Fatalf("k=1000 returned %d hits, want %d", len(all), len(names)-1)
	}
	if _, err := ix.BruteForceName("nope", 5); !errors.Is(err, ann.ErrUnknownName) {
		t.Fatalf("unknown name err = %v, want ErrUnknownName", err)
	}
	if _, err := ix.BruteForceName(names[0], 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}
