package ann

import (
	"bytes"
	"testing"
)

// FuzzDecode mirrors the bundle io fuzz tests for the index codec: no
// input may panic Decode, every rejection must use a named error, and
// every accepted input must re-encode byte-identically and answer a
// query — so a file that survives decoding is actually servable.
func FuzzDecode(f *testing.F) {
	valid := testIndex(f, 24, 4, 8).Encode()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("LEVAHNSW"))
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(indexMagic)+4])
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/3] ^= 0x40
	f.Add(mutated)
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Decode(data)
		if err != nil {
			if !isNamedError(err) {
				t.Fatalf("decode rejection is not a named error: %v", err)
			}
			return
		}
		if !bytes.Equal(ix.Encode(), data) {
			t.Fatal("accepted input does not re-encode byte-identically")
		}
		if _, err := ix.SearchVector(make([]float64, ix.Dim()), 1, 4); err != nil {
			t.Fatalf("accepted index cannot answer a query: %v", err)
		}
	})
}
