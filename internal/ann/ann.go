// Package ann provides a dependency-free HNSW (Hierarchical Navigable
// Small World) approximate-nearest-neighbor index over Leva's
// relational embeddings. Entity resolution, token/row matching and
// online `/v1/neighbors` serving all reduce to "top-k most similar
// vectors"; this package answers that in sub-millisecond time over
// collections where the brute-force scan in internal/er is quadratic.
//
// # Determinism contract
//
// Build is fully deterministic for a fixed (vectors, Options) input:
// node levels are drawn from a single rand.Rand seeded with
// Options.Seed in insertion order, nodes are inserted sequentially,
// and every neighbor selection breaks distance ties by node id. Two
// builds of the same input therefore produce byte-identical Encode
// output, at every GOMAXPROCS and worker count — the same property the
// embedding pipeline guarantees, extended to the index artifact so the
// stage cache can treat it as content-addressed.
//
// Search is read-only after Build returns; an *Index may be queried
// from any number of goroutines concurrently.
package ann

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/embed"
)

// Metric selects the vector similarity an index is built for.
type Metric string

const (
	// MetricCosine ranks by cosine similarity. Vectors are normalized
	// to unit length at build (and query) time, so scores are in
	// [-1, 1] and match embed/er cosine exactly for nonzero vectors.
	MetricCosine Metric = "cosine"
	// MetricDot ranks by raw inner product (for vectors whose norm is
	// meaningful, e.g. popularity-scaled embeddings).
	MetricDot Metric = "dot"
)

// maxLevelCap bounds node levels so a hostile or corrupt file can
// never claim an absurd layer count; with mL = 1/ln(M) the probability
// of a legitimate draw reaching 30 is negligible for any real n.
const maxLevelCap = 30

// Options configures an HNSW build. The zero value means "defaults".
type Options struct {
	// M is the maximum number of neighbors kept per node on layers
	// above the base; the base layer keeps 2M. Default 16.
	M int
	// EfConstruction is the beam width used while inserting nodes;
	// larger values build a higher-recall graph more slowly.
	// Default 200.
	EfConstruction int
	// EfSearch is the default query-time beam width, used when a
	// search passes ef <= 0. Larger values trade latency for recall.
	// Default 64.
	EfSearch int
	// Metric selects cosine (default) or dot-product ranking.
	Metric Metric
	// Seed feeds the level generator. Fixed seed + fixed input =
	// byte-identical index (see the package determinism contract).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.M <= 0 {
		o.M = 16
	}
	if o.EfConstruction <= 0 {
		o.EfConstruction = 200
	}
	if o.EfSearch <= 0 {
		o.EfSearch = 64
	}
	if o.Metric == "" {
		o.Metric = MetricCosine
	}
	return o
}

func (o Options) validate() error {
	if o.M < 2 {
		return fmt.Errorf("ann: M must be >= 2, got %d", o.M)
	}
	if o.Metric != MetricCosine && o.Metric != MetricDot {
		return fmt.Errorf("ann: unknown metric %q (want %q or %q)", o.Metric, MetricCosine, MetricDot)
	}
	return nil
}

// ErrUnknownName is returned (wrapped) by SearchName for a name the
// index does not hold.
var ErrUnknownName = errors.New("ann: name not in index")

// Result is one search hit.
type Result struct {
	// ID is the hit's slot in Names() order (stable across save/load).
	ID int
	// Name is the embedded entity name (a token, or "table:rowIdx").
	Name string
	// Score is the similarity under the index metric: cosine
	// similarity for MetricCosine, inner product for MetricDot.
	// Results are ordered by descending score, ties by ascending ID.
	Score float64
}

// Index is an immutable HNSW graph over a fixed vector collection.
// All methods are safe for concurrent use once Build returns.
type Index struct {
	opts  Options
	dim   int
	names []string
	// Exactly one of byName and syms resolves names to ids: BuildVectors
	// and Decode populate the map, Build over an Embedding shares the
	// embedding's interned symbol table instead (no per-name map
	// entries).
	byName map[string]int32
	syms   *embed.SymbolTable
	// vecs holds all vectors row-major (n x dim), unit-normalized for
	// MetricCosine. For a dot-metric Build it aliases the embedding's
	// arena directly — zero copies; the index and the embedding are both
	// immutable after construction.
	vecs     []float64
	levels   []int32
	links    [][][]int32 // links[node][layer] = neighbor ids
	entry    int32
	maxLevel int32
	// quant, when set by Quantize, routes graph traversal through the
	// int8 arena with a float64 re-rank of the final beam (quant.go).
	quant *embed.QuantizedMatrix
}

// idOf resolves an entity name to its node id.
func (ix *Index) idOf(name string) (int32, bool) {
	if ix.syms != nil {
		id, ok := ix.syms.Lookup(name)
		return int32(id), ok
	}
	id, ok := ix.byName[name]
	return id, ok
}

// Build indexes every vector of e under opts. Unlike BuildVectors it
// does not copy per entity: the name table is the embedding's interned
// symbol table, and the vector block is the embedding's contiguous
// arena — aliased directly for MetricDot, copied once (one memmove,
// then normalized in place) for MetricCosine. The graph construction
// arithmetic is identical to BuildVectors', so the two produce the same
// index for the same input.
func Build(e *embed.Embedding, opts Options) (*Index, error) {
	if e == nil || e.Len() == 0 {
		return nil, errors.New("ann: cannot build an index over an empty embedding")
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n, dim := e.Len(), e.Dim
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("ann: %d vectors exceeds the int32 id space", n)
	}
	if dim == 0 {
		return nil, errors.New("ann: zero-dimensional vectors")
	}
	st := e.Symbols()
	// Duplicate names would make id resolution ambiguous; the sorted
	// permutation makes the scan linear.
	sorted := st.SortedIDs()
	for i := 1; i < len(sorted); i++ {
		if st.At(int(sorted[i])) == st.At(int(sorted[i-1])) {
			return nil, fmt.Errorf("ann: duplicate name %q", st.At(int(sorted[i])))
		}
	}
	start := time.Now()
	ix := &Index{
		opts:   opts,
		dim:    dim,
		names:  e.Names(),
		syms:   st,
		levels: make([]int32, n),
		links:  make([][][]int32, n),
		entry:  -1,
	}
	arena := e.Matrix().Data
	if opts.Metric == MetricCosine {
		ix.vecs = make([]float64, len(arena))
		copy(ix.vecs, arena)
		for i := 0; i < n; i++ {
			normalize(ix.vecs[i*dim : (i+1)*dim])
		}
	} else {
		ix.vecs = arena
	}
	ix.wire(rand.New(rand.NewSource(opts.Seed)))
	buildsTotal.Inc()
	buildSeconds.ObserveDuration(time.Since(start))
	return ix, nil
}

// BuildVectors indexes the given vectors, where vecs[i] is the vector
// for names[i]. Vectors are copied (and normalized for MetricCosine);
// the inputs are not retained.
func BuildVectors(names []string, vecs [][]float64, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := len(names)
	if n == 0 {
		return nil, errors.New("ann: cannot build an index over zero vectors")
	}
	if n != len(vecs) {
		return nil, fmt.Errorf("ann: %d names for %d vectors", n, len(vecs))
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("ann: %d vectors exceeds the int32 id space", n)
	}
	dim := len(vecs[0])
	if dim == 0 {
		return nil, errors.New("ann: zero-dimensional vectors")
	}
	start := time.Now()
	ix := &Index{
		opts:   opts,
		dim:    dim,
		names:  append([]string(nil), names...),
		byName: make(map[string]int32, n),
		vecs:   make([]float64, n*dim),
		levels: make([]int32, n),
		links:  make([][][]int32, n),
		entry:  -1,
	}
	for i, name := range ix.names {
		if _, dup := ix.byName[name]; dup {
			return nil, fmt.Errorf("ann: duplicate name %q", name)
		}
		ix.byName[name] = int32(i)
	}
	for i, v := range vecs {
		if len(v) != dim {
			return nil, fmt.Errorf("ann: vector %d has dim %d, want %d", i, len(v), dim)
		}
		row := ix.vecs[i*dim : (i+1)*dim]
		copy(row, v)
		if opts.Metric == MetricCosine {
			normalize(row)
		}
	}

	ix.wire(rand.New(rand.NewSource(opts.Seed)))
	buildsTotal.Inc()
	buildSeconds.ObserveDuration(time.Since(start))
	return ix, nil
}

// wire draws every node's level up front from one seeded stream (the
// only randomness in the whole build), then inserts sequentially.
func (ix *Index) wire(rng *rand.Rand) {
	mL := 1 / math.Log(float64(ix.opts.M))
	for i := range ix.levels {
		ix.levels[i] = drawLevel(rng, mL)
		ix.links[i] = make([][]int32, ix.levels[i]+1)
	}
	for i := range ix.levels {
		ix.insert(int32(i))
	}
}

func drawLevel(rng *rand.Rand, mL float64) int32 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	lvl := int32(math.Floor(-math.Log(u) * mL))
	if lvl > maxLevelCap {
		lvl = maxLevelCap
	}
	return lvl
}

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return len(ix.names) }

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Opts returns the (defaulted) build options.
func (ix *Index) Opts() Options { return ix.opts }

// Names returns the indexed names in id order (shared; do not mutate).
func (ix *Index) Names() []string { return ix.names }

// Has reports whether name is indexed.
func (ix *Index) Has(name string) bool {
	_, ok := ix.idOf(name)
	return ok
}

// vec returns the stored (possibly normalized) vector of node id.
func (ix *Index) vec(id int32) []float64 {
	return ix.vecs[int(id)*ix.dim : (int(id)+1)*ix.dim]
}

// dist is the internal ordering key: negated inner product, so smaller
// is more similar under both metrics (cosine vectors are pre-normalized).
func (ix *Index) dist(q []float64, id int32) float64 {
	v := ix.vec(id)
	var dot float64
	for i, x := range q {
		dot += x * v[i]
	}
	return -dot
}

// cand is a (distance, id) pair; every ordering decision in the index
// goes through candLess so distance ties always break by ascending id —
// the root of the determinism contract.
type cand struct {
	dist float64
	id   int32
}

func candLess(a, b cand) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.id < b.id
}

// SearchVector returns the k nearest stored vectors to q, best first.
// ef <= 0 uses Options.EfSearch; ef is raised to k when smaller.
func (ix *Index) SearchVector(q []float64, k, ef int) ([]Result, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("ann: query has dim %d, index has dim %d", len(q), ix.dim)
	}
	if k <= 0 {
		return nil, fmt.Errorf("ann: k must be positive, got %d", k)
	}
	if ix.opts.Metric == MetricCosine {
		qn := make([]float64, len(q))
		copy(qn, q)
		normalize(qn)
		q = qn
	}
	return ix.results(ix.search(q, k, ef)), nil
}

// SearchName returns the k nearest neighbors of an indexed entity,
// excluding the entity itself. Unknown names return an error wrapping
// ErrUnknownName.
func (ix *Index) SearchName(name string, k, ef int) ([]Result, error) {
	id, ok := ix.idOf(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownName, name)
	}
	if k <= 0 {
		return nil, fmt.Errorf("ann: k must be positive, got %d", k)
	}
	// Ask for one extra: the entity is its own nearest neighbor.
	hits := ix.search(ix.vec(id), k+1, ef)
	out := make([]Result, 0, k)
	for _, c := range hits {
		if c.id == id {
			continue
		}
		out = append(out, Result{ID: int(c.id), Name: ix.names[c.id], Score: -c.dist})
		if len(out) == k {
			break
		}
	}
	return out, nil
}

func (ix *Index) results(hits []cand) []Result {
	out := make([]Result, len(hits))
	for i, c := range hits {
		out[i] = Result{ID: int(c.id), Name: ix.names[c.id], Score: -c.dist}
	}
	return out
}

// search runs the layered HNSW query and returns up to k candidates
// sorted best-first. q must already be normalized for MetricCosine.
func (ix *Index) search(q []float64, k, ef int) []cand {
	if ix.quant != nil {
		return ix.searchQuant(q, k, ef)
	}
	start := time.Now()
	if ef <= 0 {
		ef = ix.opts.EfSearch
	}
	if ef < k {
		ef = k
	}
	ep := ix.entry
	for lc := ix.maxLevel; lc > 0; lc-- {
		ep = ix.greedy(q, ep, lc)
	}
	w := ix.searchLayer(q, ep, ef, 0)
	if len(w) > k {
		w = w[:k]
	}
	queriesTotal.Inc()
	querySeconds.ObserveDuration(time.Since(start))
	return w
}

// greedy descends one layer: repeatedly move to the best neighbor
// until no neighbor improves on the current node.
func (ix *Index) greedy(q []float64, ep int32, lvl int32) int32 {
	best := cand{ix.dist(q, ep), ep}
	for {
		improved := false
		for _, nb := range ix.linksAt(best.id, lvl) {
			c := cand{ix.dist(q, nb), nb}
			if candLess(c, best) {
				best = c
				improved = true
			}
		}
		if !improved {
			return best.id
		}
	}
}

func (ix *Index) linksAt(id, lvl int32) []int32 {
	ls := ix.links[id]
	if int(lvl) >= len(ls) {
		return nil
	}
	return ls[lvl]
}

// searchLayer is the HNSW beam search on one layer: expand the closest
// unexpanded candidate until it cannot improve the current ef-sized
// result set. Returns candidates sorted best-first.
func (ix *Index) searchLayer(q []float64, ep int32, ef int, lvl int32) []cand {
	d0 := cand{ix.dist(q, ep), ep}
	visited := map[int32]bool{ep: true}
	candidates := candHeap{min: true}
	candidates.push(d0)
	results := candHeap{min: false}
	results.push(d0)
	for candidates.len() > 0 {
		c := candidates.pop()
		if results.len() >= ef && candLess(results.peek(), c) {
			break
		}
		for _, nb := range ix.linksAt(c.id, lvl) {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			d := cand{ix.dist(q, nb), nb}
			if results.len() < ef || candLess(d, results.peek()) {
				candidates.push(d)
				results.push(d)
				if results.len() > ef {
					results.pop()
				}
			}
		}
	}
	out := results.drain()
	sort.Slice(out, func(i, j int) bool { return candLess(out[i], out[j]) })
	return out
}

// maxConn is the stored-degree cap: 2M on the base layer, M above.
func (ix *Index) maxConn(lvl int32) int {
	if lvl == 0 {
		return 2 * ix.opts.M
	}
	return ix.opts.M
}

// insert wires node i into the graph (nodes 0..i-1 already inserted).
func (ix *Index) insert(i int32) {
	if ix.entry < 0 {
		ix.entry = i
		ix.maxLevel = ix.levels[i]
		return
	}
	q := ix.vec(i)
	ep := ix.entry
	for lc := ix.maxLevel; lc > ix.levels[i]; lc-- {
		ep = ix.greedy(q, ep, lc)
	}
	top := ix.levels[i]
	if top > ix.maxLevel {
		top = ix.maxLevel
	}
	for lc := top; lc >= 0; lc-- {
		w := ix.searchLayer(q, ep, ix.opts.EfConstruction, lc)
		nbs := ix.selectNeighbors(q, w, ix.opts.M)
		ix.links[i][lc] = nbs
		limit := ix.maxConn(lc)
		for _, nb := range nbs {
			ix.links[nb][lc] = append(ix.links[nb][lc], i)
			if len(ix.links[nb][lc]) > limit {
				ix.shrink(nb, lc, limit)
			}
		}
		ep = w[0].id
	}
	if ix.levels[i] > ix.maxLevel {
		ix.entry = i
		ix.maxLevel = ix.levels[i]
	}
}

// selectNeighbors is the HNSW heuristic: walk candidates best-first,
// keeping one only if it is closer to q than to every neighbor already
// kept (so the kept set spreads across directions instead of
// clustering), then fill any remaining slots with the nearest pruned
// candidates to preserve connectivity.
func (ix *Index) selectNeighbors(q []float64, cands []cand, m int) []int32 {
	if len(cands) <= m {
		out := make([]int32, len(cands))
		for i, c := range cands {
			out[i] = c.id
		}
		return out
	}
	selected := make([]cand, 0, m)
	for _, c := range cands {
		if len(selected) == m {
			break
		}
		keep := true
		for _, s := range selected {
			if ix.dist(ix.vec(s.id), c.id) < c.dist {
				keep = false
				break
			}
		}
		if keep {
			selected = append(selected, c)
		}
	}
	for _, c := range cands {
		if len(selected) == m {
			break
		}
		dup := false
		for _, s := range selected {
			if s.id == c.id {
				dup = true
				break
			}
		}
		if !dup {
			selected = append(selected, c)
		}
	}
	out := make([]int32, len(selected))
	for i, c := range selected {
		out[i] = c.id
	}
	return out
}

// shrink re-selects node id's neighbor list on lvl down to m entries
// using the same heuristic insertion uses.
func (ix *Index) shrink(id, lvl int32, m int) {
	v := ix.vec(id)
	cands := make([]cand, 0, len(ix.links[id][lvl]))
	for _, nb := range ix.links[id][lvl] {
		cands = append(cands, cand{ix.dist(v, nb), nb})
	}
	sort.Slice(cands, func(i, j int) bool { return candLess(cands[i], cands[j]) })
	ix.links[id][lvl] = ix.selectNeighbors(v, cands, m)
}

func normalize(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return
	}
	inv := 1 / math.Sqrt(n)
	for i := range v {
		v[i] *= inv
	}
}
