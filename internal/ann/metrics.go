package ann

import "repro/internal/obs"

// Build and query instrumentation. Package-level, like the parallel
// and durable substrates: every index in the process reports here, and
// RegisterMetrics may attach the instruments to any number of
// registries (levad's scrape covers them alongside HTTP and cache
// health; offline builds see them via -metrics-dump). See
// docs/OBSERVABILITY.md for the enforced catalog.
var (
	buildsTotal = obs.NewCounter("leva_ann_builds_total",
		"Completed HNSW index builds (BuildVectors calls that returned an index).")
	buildSeconds = obs.NewHistogram("leva_ann_build_seconds",
		"Wall time of HNSW index builds.",
		obs.StageBuckets)
	queriesTotal = obs.NewCounter("leva_ann_queries_total",
		"ANN searches executed (SearchVector and SearchName, any caller).")
	querySeconds = obs.NewHistogram("leva_ann_query_seconds",
		"Latency of individual ANN searches.",
		obs.LatencyBuckets)
	quantQueriesTotal = obs.NewCounter("leva_quant_queries_total",
		"ANN searches answered through the int8 quantized arena (subset of leva_ann_queries_total).")
	quantRerankedTotal = obs.NewCounter("leva_quant_reranked_total",
		"Candidates re-ranked in float64 after int8 graph traversal (the accuracy-restoring pass of quantized searches).")
)

// RegisterMetrics attaches the ANN-substrate metrics to r.
func RegisterMetrics(r *obs.Registry) {
	r.Register(buildsTotal, buildSeconds, queriesTotal, querySeconds,
		quantQueriesTotal, quantRerankedTotal)
}
