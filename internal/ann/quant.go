package ann

import (
	"fmt"
	"sort"
	"time"
	"unsafe"

	"repro/internal/embed"
)

// int8 search path. Quantize attaches a symmetric int8 arena (see
// embed.QuantizedMatrix) to a built or loaded index; graph traversal
// then runs on int8 dot products with int32 accumulation — 8x less
// memory traffic per distance — and the final beam is re-ranked
// exactly in float64 before truncation to k, which is what keeps
// recall@10 >= 0.95 against brute force (asserted in quant_test.go).
// The float vectors are retained for the re-rank; under an mmap'd
// bundle they are file-backed pages the kernel can evict, so the
// resident per-vector cost of a quantized index is the int8 arena.

// maxQuantDim bounds the dimension so the int32 accumulator cannot
// overflow: 127*127*maxQuantDim < 2^31.
const maxQuantDim = 1 << 17

// Quantize switches the index's graph traversal to int8 arithmetic.
// When q is a quantized form of the index's own vector layout — same
// shape, and the metric is dot, whose vectors are stored raw — it is
// adopted directly (zero copy: a bundle's quant section serves
// straight from its buffer). Otherwise the index quantizes its stored
// vectors (normalized ones, for cosine) itself; pass nil to force
// that. Quantize must complete before the index is searched; it is
// not safe to call concurrently with searches.
func (ix *Index) Quantize(q *embed.QuantizedMatrix) error {
	if ix.dim > maxQuantDim {
		return fmt.Errorf("ann: cannot quantize dim %d (int32 dot-product accumulation is exact only up to dim %d)", ix.dim, maxQuantDim)
	}
	n := len(ix.names)
	if q != nil && ix.opts.Metric == MetricDot && q.Rows == n && q.Cols == ix.dim {
		ix.quant = q
		return nil
	}
	qm := &embed.QuantizedMatrix{
		Rows:   n,
		Cols:   ix.dim,
		Data:   make([]int8, n*ix.dim),
		Scales: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		qm.Scales[i] = embed.QuantizeRow(ix.vec(int32(i)), qm.Data[i*ix.dim:(i+1)*ix.dim])
	}
	ix.quant = qm
	return nil
}

// Quantized reports whether searches run on the int8 arena.
func (ix *Index) Quantized() bool { return ix.quant != nil }

// QuantBytes is the quantized arena's memory footprint (0 when the
// index is not quantized). Compare with 8*Len()*Dim() for the float
// arena.
func (ix *Index) QuantBytes() int64 {
	if ix.quant == nil {
		return 0
	}
	return ix.quant.Bytes()
}

// SharesStorage reports whether the index borrows memory owned by e —
// the interned symbol table Build shares, or the vector arena a
// dot-metric Build aliases — rather than holding private copies. A
// serving layer about to unmap the buffer behind e must keep that
// buffer alive while an index for which this returns true is still
// queryable. Indexes restored by Load/Decode own all their storage
// and always return false.
func (ix *Index) SharesStorage(e *embed.Embedding) bool {
	if e == nil {
		return false
	}
	if ix.syms != nil && ix.syms == e.Symbols() {
		return true
	}
	a, b := ix.vecs, e.Matrix().Data
	return len(a) > 0 && len(b) > 0 && unsafe.SliceData(a) == unsafe.SliceData(b)
}

// distQ is dist over the int8 arena: negated reconstructed inner
// product. The int32 accumulator is exact (no rounding, no overflow
// for dim <= maxQuantDim), so quantized traversal is as deterministic
// as the float path.
func (ix *Index) distQ(q8 []int8, qScale float64, id int32) float64 {
	row := ix.quant.Row(int(id))
	var acc int32
	for i, b := range q8 {
		acc += int32(b) * int32(row[i])
	}
	return -(qScale * ix.quant.Scales[id] * float64(acc))
}

// searchQuant is the int8 twin of search: quantize the query once,
// traverse on int8 distances, then re-rank the whole final beam (up
// to ef candidates) in float64 and truncate to k. Re-ranking the full
// beam rather than a fixed top-C costs one float pass over at most ef
// vectors and removes the ordering error quantization introduces
// among the survivors.
func (ix *Index) searchQuant(q []float64, k, ef int) []cand {
	start := time.Now()
	if ef <= 0 {
		ef = ix.opts.EfSearch
	}
	if ef < k {
		ef = k
	}
	q8 := make([]int8, len(q))
	qScale := embed.QuantizeRow(q, q8)
	ep := ix.entry
	for lc := ix.maxLevel; lc > 0; lc-- {
		ep = ix.greedyQ(q8, qScale, ep, lc)
	}
	w := ix.searchLayerQ(q8, qScale, ep, ef, 0)
	quantRerankedTotal.Add(float64(len(w)))
	for i := range w {
		w[i].dist = ix.dist(q, w[i].id)
	}
	sort.Slice(w, func(i, j int) bool { return candLess(w[i], w[j]) })
	if len(w) > k {
		w = w[:k]
	}
	queriesTotal.Inc()
	quantQueriesTotal.Inc()
	querySeconds.ObserveDuration(time.Since(start))
	return w
}

// greedyQ is greedy on int8 distances.
func (ix *Index) greedyQ(q8 []int8, qScale float64, ep int32, lvl int32) int32 {
	best := cand{ix.distQ(q8, qScale, ep), ep}
	for {
		improved := false
		for _, nb := range ix.linksAt(best.id, lvl) {
			c := cand{ix.distQ(q8, qScale, nb), nb}
			if candLess(c, best) {
				best = c
				improved = true
			}
		}
		if !improved {
			return best.id
		}
	}
}

// searchLayerQ is searchLayer on int8 distances.
func (ix *Index) searchLayerQ(q8 []int8, qScale float64, ep int32, ef int, lvl int32) []cand {
	d0 := cand{ix.distQ(q8, qScale, ep), ep}
	visited := map[int32]bool{ep: true}
	candidates := candHeap{min: true}
	candidates.push(d0)
	results := candHeap{min: false}
	results.push(d0)
	for candidates.len() > 0 {
		c := candidates.pop()
		if results.len() >= ef && candLess(results.peek(), c) {
			break
		}
		for _, nb := range ix.linksAt(c.id, lvl) {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			d := cand{ix.distQ(q8, qScale, nb), nb}
			if results.len() < ef || candLess(d, results.peek()) {
				candidates.push(d)
				results.push(d)
				if results.len() > ef {
					results.pop()
				}
			}
		}
	}
	out := results.drain()
	sort.Slice(out, func(i, j int) bool { return candLess(out[i], out[j]) })
	return out
}
