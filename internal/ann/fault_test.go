package ann

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/durable"
)

func faultManifestKey(t *testing.T, dir string) string {
	t.Helper()
	m, err := durable.VerifyDir(dir)
	if err != nil {
		t.Fatalf("index at %s fails verification: %v", dir, err)
	}
	var b strings.Builder
	for _, e := range m.Files {
		fmt.Fprintf(&b, "%s:%s;", e.Name, e.SHA256)
	}
	return b.String()
}

// TestSaveIndexCrashPointSweep proves the index artifact inherits the
// bundle's crash-safety: for every filesystem operation a replacing
// Save performs, simulate a crash (or a transient error, or a torn
// write) at exactly that point, "restart", and require that Load finds
// exactly the old index or exactly the new one — never a hybrid.
func TestSaveIndexCrashPointSweep(t *testing.T) {
	oldIx := testIndex(t, 50, 6, 21)
	newIx := testIndex(t, 50, 6, 22)

	refDir := filepath.Join(t.TempDir(), "index")
	if err := oldIx.Save(refDir); err != nil {
		t.Fatal(err)
	}
	oldKey := faultManifestKey(t, refDir)
	counter := durable.NewFaultFS(durable.OS())
	if err := newIx.save(counter, refDir); err != nil {
		t.Fatal(err)
	}
	newKey := faultManifestKey(t, refDir)
	if oldKey == newKey {
		t.Fatal("fixture indexes are identical on disk; the sweep cannot distinguish old from new")
	}
	counts := counter.Counts()

	crashPoints := 0
	sweep := func(mode string, short bool, inject func(*durable.FaultFS, durable.Op, int)) {
		for _, op := range durable.Ops {
			if short && op != durable.OpWrite {
				continue
			}
			for k := 1; k <= counts[op]; k++ {
				name := fmt.Sprintf("%s/%s-%d", mode, op, k)
				if short {
					name += "-short"
				}
				t.Run(name, func(t *testing.T) {
					dir := filepath.Join(t.TempDir(), "index")
					if err := oldIx.Save(dir); err != nil {
						t.Fatal(err)
					}
					ffs := durable.NewFaultFS(durable.OS())
					inject(ffs, op, k)
					if short {
						ffs.ShortWrites()
					}
					if err := newIx.save(ffs, dir); err == nil {
						t.Fatalf("save with injected %s fault #%d reported success", op, k)
					}
					if !ffs.Fired() {
						t.Fatalf("fault %s #%d never fired; op count drifted from the reference save", op, k)
					}
					if _, err := Load(dir); err != nil {
						t.Fatalf("index unloadable after crash at %s #%d: %v", op, k, err)
					}
					got := faultManifestKey(t, dir)
					if got != oldKey && got != newKey {
						t.Fatalf("crash at %s #%d left a hybrid index on disk:\n got %s\n old %s\n new %s",
							op, k, got, oldKey, newKey)
					}
					crashPoints++
				})
			}
		}
	}

	sweep("crash", false, func(f *durable.FaultFS, op durable.Op, k int) { f.CrashAt(op, k) })
	sweep("crash", true, func(f *durable.FaultFS, op durable.Op, k int) { f.CrashAt(op, k) })
	sweep("transient", false, func(f *durable.FaultFS, op durable.Op, k int) { f.FailAt(op, k) })

	if crashPoints < 10 {
		t.Errorf("sweep covered only %d crash points; the op counts look implausibly low: %v", crashPoints, counts)
	}
}
