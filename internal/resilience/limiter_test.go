package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestLimiterAdmitsUpToLimitThenSheds(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxLimit: 2, QueueLen: 0})

	rel1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire 1: %v", err)
	}
	rel2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire 2: %v", err)
	}
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("Acquire 3 = %v, want ErrSaturated (queue disabled)", err)
	}
	rel1(OutcomeOK)
	rel2(OutcomeOK)
	if got := l.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0", got)
	}
}

func TestLimiterQueueGrantsFIFO(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxLimit: 1, QueueLen: 2, QueueTimeout: time.Minute})

	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}

	type result struct {
		idx int
		rel func(Outcome)
		err error
	}
	results := make(chan result, 2)
	started := make(chan int, 2)
	for i := 1; i <= 2; i++ {
		i := i
		go func() {
			started <- i
			r, err := l.Acquire(context.Background())
			results <- result{i, r, err}
		}()
		<-started
		// Wait until this goroutine is actually queued before starting
		// the next, so FIFO order is deterministic.
		deadline := time.Now().Add(2 * time.Second)
		for l.QueueDepth() < i {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued (depth %d)", i, l.QueueDepth())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Queue full now.
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("Acquire with full queue = %v, want ErrSaturated", err)
	}

	rel(OutcomeOK)
	first := <-results
	if first.err != nil || first.idx != 1 {
		t.Fatalf("first grant = waiter %d err %v, want waiter 1", first.idx, first.err)
	}
	first.rel(OutcomeOK)
	second := <-results
	if second.err != nil || second.idx != 2 {
		t.Fatalf("second grant = waiter %d err %v, want waiter 2", second.idx, second.err)
	}
	second.rel(OutcomeOK)
}

func TestLimiterQueueTimeout(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxLimit: 1, QueueLen: 1, QueueTimeout: 10 * time.Millisecond})

	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer rel(OutcomeOK)

	start := time.Now()
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued Acquire = %v, want ErrQueueTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("queue timeout took %v", elapsed)
	}
	if got := l.QueueDepth(); got != 0 {
		t.Fatalf("QueueDepth after timeout = %d, want 0", got)
	}
}

func TestLimiterQueueRespectsContext(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxLimit: 1, QueueLen: 1, QueueTimeout: time.Minute})

	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer rel(OutcomeOK)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx)
		errc <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for l.QueueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued Acquire after cancel = %v, want context.Canceled", err)
	}
}

func TestLimiterAIMD(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxLimit: 16, InitialLimit: 8, MinLimit: 1, BackoffRatio: 0.5})

	// One drop halves the limit.
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	rel(OutcomeDropped)
	if got := l.Limit(); got != 4 {
		t.Fatalf("limit after drop = %v, want 4", got)
	}

	// Successes climb it back additively (~1/limit per success).
	before := l.Limit()
	for i := 0; i < 4; i++ {
		rel, err := l.Acquire(context.Background())
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		rel(OutcomeOK)
	}
	after := l.Limit()
	if after <= before || after > before+1.01 {
		t.Fatalf("limit after 4 successes = %v, want in (%v, %v]", after, before, before+1.01)
	}

	// Drops can never push it below MinLimit; OutcomeIgnore leaves it alone.
	for i := 0; i < 20; i++ {
		rel, err := l.Acquire(context.Background())
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		rel(OutcomeDropped)
	}
	if got := l.Limit(); got < 1 {
		t.Fatalf("limit floor violated: %v", got)
	}
	floor := l.Limit()
	rel, err = l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	rel(OutcomeIgnore)
	if got := l.Limit(); got != floor {
		t.Fatalf("OutcomeIgnore moved the limit: %v -> %v", floor, got)
	}
}

func TestLimiterLimitNeverExceedsMax(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxLimit: 2})
	for i := 0; i < 50; i++ {
		rel, err := l.Acquire(context.Background())
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		rel(OutcomeOK)
	}
	if got := l.Limit(); got > 2 {
		t.Fatalf("limit exceeded MaxLimit: %v", got)
	}
}

func TestLimiterOnBackoff(t *testing.T) {
	var backoffs int
	l := NewLimiter(LimiterConfig{MaxLimit: 8, OnBackoff: func() { backoffs++ }})
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	rel(OutcomeDropped)
	if backoffs != 1 {
		t.Fatalf("backoffs = %d, want 1", backoffs)
	}
}

func TestLimiterReleaseIdempotent(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxLimit: 4})
	rel, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	rel(OutcomeOK)
	rel(OutcomeOK) // second call must be a no-op
	if got := l.InFlight(); got != 0 {
		t.Fatalf("InFlight after double release = %d, want 0", got)
	}
}

func TestLimiterRetryAfter(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxLimit: 4})
	if got := l.RetryAfter(); got != time.Second {
		t.Fatalf("RetryAfter with no history = %v, want 1s floor", got)
	}
	// Feed a slow service time; Retry-After rounds up to whole seconds.
	l.mu.Lock()
	l.ewmaService = 2500 * time.Millisecond
	l.mu.Unlock()
	if got := l.RetryAfter(); got != 3*time.Second {
		t.Fatalf("RetryAfter = %v, want 3s", got)
	}
}
