package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected marks a chaos-injected dependency failure, so callers
// (and error taxonomies) can tell a drill from a real outage.
var ErrInjected = errors.New("resilience: chaos-injected failure")

// Rule is the fault profile for one chaos target. Rates are
// probabilities in [0, 1]; a zero rule injects nothing.
type Rule struct {
	// ErrRate is the probability of failing the call outright with
	// ErrInjected.
	ErrRate float64
	// Latency is the delay injected with probability LatencyRate.
	Latency time.Duration
	// LatencyRate defaults to 1 when Latency is set and the rate is 0.
	LatencyRate float64
	// StallRate is the probability of stalling the response body
	// mid-write (HTTP targets only).
	StallRate float64
	// StallFor is how long a stalled body hangs. Default 250ms.
	StallFor time.Duration
}

func (r Rule) withDefaults() Rule {
	if r.Latency > 0 && r.LatencyRate == 0 {
		r.LatencyRate = 1
	}
	if r.StallRate > 0 && r.StallFor == 0 {
		r.StallFor = 250 * time.Millisecond
	}
	return r
}

// active reports whether the rule can inject anything.
func (r Rule) active() bool {
	return r.ErrRate > 0 || (r.Latency > 0 && r.LatencyRate > 0) || r.StallRate > 0
}

// Decision is one draw from the chaos source: what to inject into the
// current call against a target.
type Decision struct {
	// Delay is extra latency to impose before the real work (zero =
	// none). Sleep it with Sleep so a caller deadline still wins.
	Delay time.Duration
	// Err, when true, fails the call with ErrInjected instead of
	// running it.
	Err bool
	// Stall, when true, hangs the response body mid-write for StallFor.
	Stall bool
	// StallFor is the stall duration when Stall is set.
	StallFor time.Duration
}

// Chaos is a seeded fault source. All draws come from one PRNG, so a
// fixed seed plus a fixed call sequence yields a fixed fault schedule —
// the property the chaos test suite and the check.sh drill rely on to
// make breaker transitions deterministic.
//
// Chaos is always constructed explicitly (levad's -chaos flag, a test)
// and starts enabled; it can be toggled and re-profiled at runtime via
// Enable/SetRule (POST /admin/chaos). A nil *Chaos is inert.
type Chaos struct {
	mu      sync.Mutex
	rng     *rand.Rand
	seed    int64
	enabled bool
	rules   map[string]Rule

	// OnInject, when set, observes every injected fault as (target,
	// kind) with kind one of "error", "latency", "stall". Set once at
	// wiring time, before traffic.
	OnInject func(target, kind string)
}

// NewChaos returns an enabled chaos source with no rules.
func NewChaos(seed int64) *Chaos {
	return &Chaos{
		rng:     rand.New(rand.NewSource(seed)),
		seed:    seed,
		enabled: true,
		rules:   make(map[string]Rule),
	}
}

// ParseSpec builds a Chaos from the -chaos flag syntax:
//
//	seed=<n>;<target>:<key>=<value>[,<key>=<value>...];...
//
// Targets are free-form names ("http", "ann", "rowcache"). Keys:
// err=<rate>, lat=<duration>, latrate=<rate>, stall=<rate>,
// stallfor=<duration>. Example:
//
//	seed=1;ann:err=0.3,lat=400ms;http:stall=0.05
//
// A spec of just "seed=<n>" (or "") yields an enabled source with no
// rules — faults can then be added at runtime via /admin/chaos.
func ParseSpec(spec string) (*Chaos, error) {
	c := NewChaos(1)
	for _, section := range strings.Split(spec, ";") {
		section = strings.TrimSpace(section)
		if section == "" {
			continue
		}
		if v, ok := strings.CutPrefix(section, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("resilience: chaos spec: bad seed %q", v)
			}
			c.Reseed(seed)
			continue
		}
		target, assigns, ok := strings.Cut(section, ":")
		if !ok || target == "" {
			return nil, fmt.Errorf("resilience: chaos spec: section %q is neither seed=<n> nor <target>:<key>=<value>,...", section)
		}
		rule := c.RuleFor(target)
		for _, assign := range strings.Split(assigns, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(assign), "=")
			if !ok {
				return nil, fmt.Errorf("resilience: chaos spec: %q is not <key>=<value>", assign)
			}
			var err error
			switch key {
			case "err":
				rule.ErrRate, err = parseRate(val)
			case "lat":
				rule.Latency, err = time.ParseDuration(val)
			case "latrate":
				rule.LatencyRate, err = parseRate(val)
			case "stall":
				rule.StallRate, err = parseRate(val)
			case "stallfor":
				rule.StallFor, err = time.ParseDuration(val)
			default:
				return nil, fmt.Errorf("resilience: chaos spec: unknown key %q (want err, lat, latrate, stall, stallfor)", key)
			}
			if err != nil {
				return nil, fmt.Errorf("resilience: chaos spec: %s=%s: %w", key, val, err)
			}
		}
		c.SetRule(target, rule)
	}
	return c, nil
}

func parseRate(s string) (float64, error) {
	rate, err := strconv.ParseFloat(s, 64)
	if err != nil || rate < 0 || rate > 1 {
		return 0, fmt.Errorf("want a probability in [0, 1], got %q", s)
	}
	return rate, nil
}

// Reseed resets the PRNG to a fresh sequence from seed, so drills can
// be replayed.
func (c *Chaos) Reseed(seed int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seed = seed
	c.rng = rand.New(rand.NewSource(seed))
}

// Enable turns injection on or off without touching the rules.
func (c *Chaos) Enable(on bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = on
}

// Enabled reports whether Decide may inject. A nil Chaos is disabled.
func (c *Chaos) Enabled() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enabled
}

// SetRule installs (or replaces) the fault profile for a target.
func (c *Chaos) SetRule(target string, r Rule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules[target] = r.withDefaults()
}

// RuleFor returns the target's current rule (zero Rule when unset).
func (c *Chaos) RuleFor(target string) Rule {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rules[target]
}

// Seed returns the seed of the current PRNG sequence.
func (c *Chaos) Seed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seed
}

// Targets returns the configured target names, sorted.
func (c *Chaos) Targets() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.rules))
	for t := range c.rules {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Decide draws one fault decision for a call against target. Disabled
// sources, nil sources, and targets without an active rule never
// inject — and never consume PRNG draws, so drill sequences stay
// aligned with the faults actually possible.
func (c *Chaos) Decide(target string) Decision {
	if c == nil {
		return Decision{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rule := c.rules[target]
	if !c.enabled || !rule.active() {
		return Decision{}
	}
	var d Decision
	if rule.ErrRate > 0 && c.rng.Float64() < rule.ErrRate {
		d.Err = true
	}
	if rule.Latency > 0 && rule.LatencyRate > 0 && c.rng.Float64() < rule.LatencyRate {
		d.Delay = rule.Latency
	}
	if rule.StallRate > 0 && c.rng.Float64() < rule.StallRate {
		d.Stall = true
		d.StallFor = rule.StallFor
	}
	c.count(target, d)
	return d
}

// count reports injected faults to OnInject. Called with the lock
// held; the callback must not call back into the Chaos.
func (c *Chaos) count(target string, d Decision) {
	if c.OnInject == nil {
		return
	}
	if d.Err {
		c.OnInject(target, "error")
	}
	if d.Delay > 0 {
		c.OnInject(target, "latency")
	}
	if d.Stall {
		c.OnInject(target, "stall")
	}
}

// Sleep waits for d or until ctx is done, returning ctx's error when
// the caller stopped waiting first — injected latency must never
// outlive the request it was injected into.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
