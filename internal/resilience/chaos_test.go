package resilience

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("seed=42;ann:err=0.3,lat=400ms;http:stall=0.05,stallfor=1s")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if got := c.Seed(); got != 42 {
		t.Fatalf("Seed = %d, want 42", got)
	}
	if !c.Enabled() {
		t.Fatal("parsed chaos should start enabled")
	}
	ann := c.RuleFor("ann")
	if ann.ErrRate != 0.3 || ann.Latency != 400*time.Millisecond || ann.LatencyRate != 1 {
		t.Fatalf("ann rule = %+v, want err 0.3, lat 400ms, latrate defaulted to 1", ann)
	}
	httpRule := c.RuleFor("http")
	if httpRule.StallRate != 0.05 || httpRule.StallFor != time.Second {
		t.Fatalf("http rule = %+v", httpRule)
	}
	if got := c.Targets(); len(got) != 2 || got[0] != "ann" || got[1] != "http" {
		t.Fatalf("Targets = %v", got)
	}
}

func TestParseSpecEmptyAndSeedOnly(t *testing.T) {
	for _, spec := range []string{"", "seed=7", " ; ; "} {
		c, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		if len(c.Targets()) != 0 {
			t.Fatalf("ParseSpec(%q) produced rules: %v", spec, c.Targets())
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		spec, wantSub string
	}{
		{"seed=abc", "bad seed"},
		{"noassign", "neither seed"},
		{"ann:err", "not <key>=<value>"},
		{"ann:bogus=1", "unknown key"},
		{"ann:err=1.5", "probability"},
		{"ann:err=-0.1", "probability"},
		{"ann:lat=fast", "lat=fast"},
	}
	for _, tc := range cases {
		if _, err := ParseSpec(tc.spec); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseSpec(%q) err = %v, want containing %q", tc.spec, err, tc.wantSub)
		}
	}
}

func TestChaosDeterministicUnderSeed(t *testing.T) {
	run := func() []Decision {
		c, err := ParseSpec("seed=9;ann:err=0.5,lat=1ms,latrate=0.5,stall=0.5")
		if err != nil {
			t.Fatalf("ParseSpec: %v", err)
		}
		out := make([]Decision, 100)
		for i := range out {
			out[i] = c.Decide("ann")
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged under same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Sanity: with these rates the schedule is not all-zero.
	var injected bool
	for _, d := range a {
		if d.Err || d.Delay > 0 || d.Stall {
			injected = true
			break
		}
	}
	if !injected {
		t.Fatal("no faults injected over 100 draws at 50% rates")
	}
}

func TestChaosReseedReplays(t *testing.T) {
	c := NewChaos(3)
	c.SetRule("x", Rule{ErrRate: 0.5})
	first := make([]Decision, 20)
	for i := range first {
		first[i] = c.Decide("x")
	}
	c.Reseed(3)
	for i := range first {
		if got := c.Decide("x"); got != first[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestChaosDisabledAndNilInjectNothing(t *testing.T) {
	c := NewChaos(1)
	c.SetRule("x", Rule{ErrRate: 1})
	c.Enable(false)
	for i := 0; i < 10; i++ {
		if d := c.Decide("x"); d != (Decision{}) {
			t.Fatalf("disabled chaos injected %+v", d)
		}
	}
	c.Enable(true)
	if d := c.Decide("x"); !d.Err {
		t.Fatal("re-enabled chaos at ErrRate 1 did not inject")
	}

	var nilChaos *Chaos
	if nilChaos.Enabled() {
		t.Fatal("nil chaos reports enabled")
	}
	if d := nilChaos.Decide("x"); d != (Decision{}) {
		t.Fatalf("nil chaos injected %+v", d)
	}
	nilChaos.Enable(true) // must not panic
}

func TestChaosUnknownTargetInjectsNothing(t *testing.T) {
	c := NewChaos(1)
	c.SetRule("ann", Rule{ErrRate: 1})
	if d := c.Decide("other"); d != (Decision{}) {
		t.Fatalf("unknown target injected %+v", d)
	}
}

func TestChaosOnInject(t *testing.T) {
	c := NewChaos(1)
	counts := map[string]int{}
	c.OnInject = func(target, kind string) { counts[target+"/"+kind]++ }
	c.SetRule("ann", Rule{ErrRate: 1, Latency: time.Millisecond, StallRate: 1})
	c.Decide("ann")
	for _, k := range []string{"ann/error", "ann/latency", "ann/stall"} {
		if counts[k] != 1 {
			t.Fatalf("counts = %v, want one of each kind", counts)
		}
	}
}

func TestSleepRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Minute); err != context.Canceled {
		t.Fatalf("Sleep on canceled ctx = %v, want context.Canceled", err)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(0) = %v", err)
	}
	start := time.Now()
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("Sleep(1ms) = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("Sleep(1ms) overslept")
	}
}

func TestParseDeadline(t *testing.T) {
	d, ok, err := ParseDeadline("")
	if d != 0 || ok || err != nil {
		t.Fatalf("ParseDeadline(\"\") = %v %v %v, want 0 false nil", d, ok, err)
	}
	d, ok, err = ParseDeadline("1500")
	if err != nil || !ok || d != 1500*time.Millisecond {
		t.Fatalf("ParseDeadline(1500) = %v %v %v", d, ok, err)
	}
	for _, bad := range []string{"abc", "1.5", "0", "-10"} {
		if _, _, err := ParseDeadline(bad); err == nil {
			t.Errorf("ParseDeadline(%q) succeeded, want error", bad)
		}
	}
}
