package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic breaker
// timing.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1700000000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// fail records one failed call through the breaker; t.Fatal if the
// breaker refused it.
func fail(t *testing.T, b *Breaker) {
	t.Helper()
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow: %v", err)
	}
	done(false)
}

func succeed(t *testing.T, b *Breaker) {
	t.Helper()
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow: %v", err)
	}
	done(true)
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: time.Second, Now: clock.Now})

	fail(t, b)
	fail(t, b)
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	fail(t, b)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after 3 failures = %v, want open", got)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow while open = %v, want ErrOpen", err)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Now: clock.Now})

	fail(t, b)
	fail(t, b)
	succeed(t, b)
	fail(t, b)
	fail(t, b)
	if got := b.State(); got != StateClosed {
		t.Fatalf("state = %v, want closed (success should reset the streak)", got)
	}
	fail(t, b)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state = %v, want open", got)
	}
}

func TestBreakerHalfOpenAfterCooling(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Second, SuccessThreshold: 2, Now: clock.Now})

	fail(t, b)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if ra := b.RetryAfter(); ra != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s", ra)
	}

	clock.Advance(time.Second)
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after cooling = %v, want half-open", got)
	}
	if ra := b.RetryAfter(); ra != 0 {
		t.Fatalf("RetryAfter while half-open = %v, want 0", ra)
	}

	// Two probe successes close it.
	succeed(t, b)
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after 1 probe success = %v, want half-open", got)
	}
	succeed(t, b)
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 2 probe successes = %v, want closed", got)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Second, Now: clock.Now})

	fail(t, b)
	clock.Advance(time.Second)
	fail(t, b) // probe fails
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// Cooling restarts from the re-trip.
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow immediately after re-trip = %v, want ErrOpen", err)
	}
}

func TestBreakerHalfOpenBoundsProbes(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Second, HalfOpenProbes: 1, Now: clock.Now})

	fail(t, b)
	clock.Advance(time.Second)
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("first probe refused: %v", err)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe = %v, want ErrOpen", err)
	}
	done(true)
	if _, err := b.Allow(); err != nil {
		t.Fatalf("probe slot not released: %v", err)
	}
}

func TestBreakerResetForcesClosed(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Hour, Now: clock.Now})

	fail(t, b)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state = %v, want open", got)
	}
	b.Reset()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after Reset = %v, want closed", got)
	}
	succeed(t, b)
}

func TestBreakerOnStateChangeSequence(t *testing.T) {
	clock := newFakeClock()
	var transitions []string
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 2,
		OpenFor:          time.Second,
		SuccessThreshold: 1,
		Now:              clock.Now,
		OnStateChange: func(from, to State) {
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	})

	fail(t, b)
	fail(t, b) // closed -> open
	clock.Advance(time.Second)
	succeed(t, b) // open -> half-open (via Allow), half-open -> closed

	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition[%d] = %q, want %q (all: %v)", i, transitions[i], want[i], transitions)
		}
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		StateClosed:   "closed",
		StateHalfOpen: "half-open",
		StateOpen:     "open",
		State(42):     "state(42)",
	}
	for state, want := range cases {
		if got := state.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(state), got, want)
		}
	}
}
