package resilience

import (
	"container/list"
	"context"
	"errors"
	"math"
	"sync"
	"time"
)

// Outcome is what a request admitted by the Limiter reports back when
// it finishes; it is the only signal the AIMD control loop sees.
type Outcome int

const (
	// OutcomeOK: the request completed within its budgets. Feeds the
	// additive-increase side and the service-time estimate.
	OutcomeOK Outcome = iota
	// OutcomeDropped: the request exceeded its deadline or timed out —
	// the congestion signal. Feeds the multiplicative decrease.
	OutcomeDropped
	// OutcomeIgnore: the request says nothing about capacity (client
	// errors, validation failures). The limit is left alone.
	OutcomeIgnore
)

// ErrSaturated is returned by Acquire when the limiter is at its limit
// and the queue (if any) is full: shed immediately with a 429.
var ErrSaturated = errors.New("resilience: limiter saturated")

// ErrQueueTimeout is returned by Acquire when a queued request waited
// QueueTimeout without a slot freeing: shed with a 429.
var ErrQueueTimeout = errors.New("resilience: queue wait timed out")

// LimiterConfig tunes a Limiter. The zero value gets production
// defaults.
type LimiterConfig struct {
	// MaxLimit is the hard concurrency ceiling the adaptive limit can
	// never exceed. Default 64.
	MaxLimit int
	// MinLimit is the floor the multiplicative decrease can never go
	// below — the trickle that keeps probing capacity during sustained
	// overload. Default 1.
	MinLimit int
	// InitialLimit is the starting limit. Default MaxLimit (optimistic:
	// behave exactly like a fixed limiter until congestion appears).
	InitialLimit int
	// QueueLen bounds requests waiting for a slot beyond the limit.
	// 0 disables queueing (immediate shed at the limit).
	QueueLen int
	// QueueTimeout bounds one request's wait in the queue. Default
	// 100ms; negative waits until the request's own context expires.
	QueueTimeout time.Duration
	// BackoffRatio is the multiplicative-decrease factor applied on
	// OutcomeDropped, in (0, 1). Default 0.75.
	BackoffRatio float64
	// OnBackoff, when set, observes each multiplicative decrease.
	OnBackoff func()
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.MaxLimit <= 0 {
		c.MaxLimit = 64
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 1
	}
	if c.MinLimit > c.MaxLimit {
		c.MinLimit = c.MaxLimit
	}
	if c.InitialLimit <= 0 {
		c.InitialLimit = c.MaxLimit
	}
	if c.InitialLimit > c.MaxLimit {
		c.InitialLimit = c.MaxLimit
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 100 * time.Millisecond
	}
	if c.BackoffRatio <= 0 || c.BackoffRatio >= 1 {
		c.BackoffRatio = 0.75
	}
	return c
}

// Limiter is an adaptive (AIMD) concurrency limiter with a short
// bounded FIFO queue. Under healthy traffic it admits up to the
// current limit and the limit climbs back toward MaxLimit; when
// admitted requests start getting dropped (timeouts, expired
// deadlines) the limit shrinks multiplicatively, converting sustained
// overload into fast 429s instead of a growing pile of doomed work.
type Limiter struct {
	cfg LimiterConfig

	mu       sync.Mutex
	limit    float64
	inflight int
	waiters  *list.List // of *waiter, FIFO

	// ewmaService is the exponentially weighted moving average of
	// successful requests' service time — the basis for Retry-After.
	ewmaService time.Duration
}

// waiter is one queued Acquire. granted is flipped under the limiter
// lock so a grant racing a timeout resolves exactly one way.
type waiter struct {
	ch      chan struct{}
	granted bool
}

// NewLimiter returns a limiter at its initial limit.
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg = cfg.withDefaults()
	return &Limiter{
		cfg:     cfg,
		limit:   float64(cfg.InitialLimit),
		waiters: list.New(),
	}
}

// Acquire requests an admission slot, queueing briefly when the
// limiter is at its limit. On success it returns a release function
// the caller MUST invoke exactly once with the request's outcome. On
// failure it returns ErrSaturated (queue full or disabled),
// ErrQueueTimeout (queued too long), or the context's error.
func (l *Limiter) Acquire(ctx context.Context) (release func(Outcome), err error) {
	l.mu.Lock()
	if l.inflight < l.limitNow() {
		l.inflight++
		l.mu.Unlock()
		return l.releaseFunc(time.Now()), nil
	}
	if l.cfg.QueueLen <= 0 || l.waiters.Len() >= l.cfg.QueueLen {
		l.mu.Unlock()
		return nil, ErrSaturated
	}
	w := &waiter{ch: make(chan struct{})}
	elem := l.waiters.PushBack(w)
	l.mu.Unlock()

	var timeout <-chan time.Time
	if l.cfg.QueueTimeout > 0 {
		t := time.NewTimer(l.cfg.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-w.ch:
		return l.releaseFunc(time.Now()), nil
	case <-timeout:
		err = ErrQueueTimeout
	case <-ctx.Done():
		err = ctx.Err()
	}
	l.mu.Lock()
	if w.granted {
		// The grant beat the timeout: the slot is ours after all — but
		// the caller is done waiting, so hand it straight back.
		l.inflight--
		l.grantLocked()
		l.mu.Unlock()
		return nil, err
	}
	l.waiters.Remove(elem)
	l.mu.Unlock()
	return nil, err
}

// releaseFunc builds the one-shot release closure for an admitted
// request that started service at start.
func (l *Limiter) releaseFunc(start time.Time) func(Outcome) {
	var once sync.Once
	return func(out Outcome) {
		once.Do(func() { l.release(out, time.Since(start)) })
	}
}

func (l *Limiter) release(out Outcome, served time.Duration) {
	l.mu.Lock()
	switch out {
	case OutcomeOK:
		// Additive increase: ~+1 per limit's worth of successes.
		l.limit = math.Min(float64(l.cfg.MaxLimit), l.limit+1/math.Max(l.limit, 1))
		const alpha = 0.2
		if l.ewmaService == 0 {
			l.ewmaService = served
		} else {
			l.ewmaService = time.Duration(float64(l.ewmaService)*(1-alpha) + float64(served)*alpha)
		}
	case OutcomeDropped:
		l.limit = math.Max(float64(l.cfg.MinLimit), l.limit*l.cfg.BackoffRatio)
		if l.cfg.OnBackoff != nil {
			l.cfg.OnBackoff()
		}
	}
	l.inflight--
	l.grantLocked()
	l.mu.Unlock()
}

// grantLocked hands freed slots to queued waiters in FIFO order.
// Called with the lock held.
func (l *Limiter) grantLocked() {
	for l.inflight < l.limitNow() && l.waiters.Len() > 0 {
		w := l.waiters.Remove(l.waiters.Front()).(*waiter)
		w.granted = true
		l.inflight++
		close(w.ch)
	}
}

// limitNow is the integer admission limit (never below MinLimit).
// Called with the lock held.
func (l *Limiter) limitNow() int {
	n := int(l.limit)
	if n < l.cfg.MinLimit {
		n = l.cfg.MinLimit
	}
	return n
}

// Limit returns the current adaptive limit (fractional: the AIMD state
// between integer steps).
func (l *Limiter) Limit() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}

// InFlight returns the number of admitted, unreleased requests.
func (l *Limiter) InFlight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// QueueDepth returns the number of requests waiting for admission.
func (l *Limiter) QueueDepth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waiters.Len()
}

// RetryAfter estimates how long a shed client should back off: the
// observed service-time EWMA, floored at one second (Retry-After is an
// integer-seconds header, and sub-second retries would stampede).
func (l *Limiter) RetryAfter() time.Duration {
	l.mu.Lock()
	ewma := l.ewmaService
	l.mu.Unlock()
	if ewma < time.Second {
		return time.Second
	}
	// Round up to whole seconds so the header never understates.
	return time.Duration(math.Ceil(ewma.Seconds())) * time.Second
}
