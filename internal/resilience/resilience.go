// Package resilience is the serving daemon's overload- and
// fault-tolerance substrate: the pieces that keep levad answering —
// degraded if it must, bounded always — when traffic exceeds capacity
// or a dependency misbehaves.
//
// It carries four independent, dependency-free mechanisms:
//
//   - Deadline propagation (ParseDeadline): clients declare how long
//     they will wait via the X-Leva-Deadline-Ms header; the serving
//     layer folds that into the request context so work is abandoned
//     the moment its caller stops waiting.
//   - Adaptive admission control (Limiter): an AIMD concurrency
//     limiter with a short bounded queue. The limit climbs additively
//     while requests succeed and backs off multiplicatively when they
//     time out, so sustained overload degrades into fast, explicit
//     429s whose Retry-After is derived from observed service time.
//   - Circuit breakers (Breaker): per-dependency closed → open →
//     half-open state machines. A dependency that keeps failing is cut
//     off for a cooling period instead of dragging every request down
//     with it; probes re-close the breaker once it recovers.
//   - Chaos injection (Chaos): a seeded fault source that injects
//     latency, errors, and stalled response bodies per target, so the
//     three mechanisms above can be proven under fire — in tests, and
//     as an operator drill via levad's -chaos flag and /admin/chaos.
//
// Everything is deterministic under test: breakers take an injectable
// clock, the chaos source is a seeded PRNG, and the limiter's
// adjustments are pure functions of the outcomes fed to it.
// internal/serve wires these into the HTTP stack; see
// docs/SERVING.md (API surface) and docs/OPERATIONS.md (the overload
// & brownout runbook).
package resilience

import (
	"fmt"
	"strconv"
	"time"
)

// DeadlineHeader is the request header carrying the client's total
// willingness to wait, in integer milliseconds. A server that cannot
// answer within it should stop working on the request: the client is
// already gone.
const DeadlineHeader = "X-Leva-Deadline-Ms"

// ParseDeadline interprets a DeadlineHeader value. An empty value
// means the client declared no deadline (ok=false, no error); a
// non-integer, zero, or negative value is a client error.
func ParseDeadline(value string) (d time.Duration, ok bool, err error) {
	if value == "" {
		return 0, false, nil
	}
	ms, err := strconv.ParseInt(value, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("resilience: %s: %q is not an integer millisecond count", DeadlineHeader, value)
	}
	if ms <= 0 {
		return 0, false, fmt.Errorf("resilience: %s: deadline must be positive, got %d", DeadlineHeader, ms)
	}
	return time.Duration(ms) * time.Millisecond, true, nil
}
