package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int

const (
	// StateClosed is normal operation: calls flow through, consecutive
	// failures are counted.
	StateClosed State = iota
	// StateHalfOpen admits a bounded number of probe calls after the
	// cooling period; their outcomes decide between closing and
	// re-opening.
	StateHalfOpen
	// StateOpen rejects every call until the cooling period elapses.
	StateOpen
)

// String returns the operator-facing name ("closed", "half-open",
// "open") used in /healthz and logs.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ErrOpen is returned by Breaker.Allow while the breaker is rejecting
// calls. Callers should degrade (serve a fallback) or fail fast with a
// Retry-After, never block.
var ErrOpen = errors.New("resilience: circuit breaker open")

// BreakerConfig tunes one Breaker. The zero value gets production
// defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the
	// breaker from closed to open. Default 5.
	FailureThreshold int
	// OpenFor is the cooling period: how long the breaker rejects
	// calls before letting probes through. Default 5s.
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrently admitted probe calls while
	// half-open. Default 1.
	HalfOpenProbes int
	// SuccessThreshold is how many consecutive probe successes close a
	// half-open breaker. Default 2.
	SuccessThreshold int
	// Now is the clock; nil means time.Now. Tests inject a fake clock
	// so open → half-open transitions are deterministic.
	Now func() time.Time
	// OnStateChange, when set, observes every transition (metrics,
	// logging). It is called with the breaker's lock held — it must not
	// call back into the breaker.
	OnStateChange func(from, to State)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a circuit breaker guarding one dependency. Concurrency-
// safe; transitions are driven entirely by Allow outcomes and the
// clock, so a fixed fault schedule yields a fixed transition sequence.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     State
	failures  int       // consecutive failures while closed
	successes int       // consecutive probe successes while half-open
	probes    int       // probes currently in flight while half-open
	openedAt  time.Time // when the breaker last tripped open
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow asks to make one guarded call. On admission it returns a done
// function the caller MUST invoke exactly once with the call's outcome
// (ok=false only for dependency failures — timeouts, injected faults,
// infrastructure errors — never for caller mistakes like an unknown
// token). While the breaker is open, Allow returns ErrOpen and a nil
// done.
func (b *Breaker) Allow() (done func(ok bool), err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.OpenFor {
			return nil, ErrOpen
		}
		b.transition(StateHalfOpen)
		fallthrough
	case StateHalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return nil, ErrOpen
		}
		b.probes++
	}
	return b.record, nil
}

// record folds one admitted call's outcome into the state machine.
func (b *Breaker) record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case StateHalfOpen:
		b.probes--
		if !ok {
			b.trip()
			return
		}
		b.successes++
		if b.successes >= b.cfg.SuccessThreshold {
			b.transition(StateClosed)
		}
	case StateOpen:
		// A call admitted before the trip finishing late; its outcome
		// no longer matters.
	}
}

// trip moves to open and starts the cooling period. Called with the
// lock held.
func (b *Breaker) trip() {
	b.openedAt = b.cfg.Now()
	b.transition(StateOpen)
}

// transition switches state and resets the counters that belong to the
// new state. Called with the lock held.
func (b *Breaker) transition(to State) {
	from := b.state
	b.state = to
	b.failures = 0
	b.successes = 0
	if to != StateHalfOpen {
		b.probes = 0
	}
	if from != to && b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(from, to)
	}
}

// State returns the current state, advancing open → half-open when the
// cooling period has elapsed (so observers see the same state a call
// would).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.transition(StateHalfOpen)
	}
	return b.state
}

// RetryAfter reports how long until an open breaker admits probes
// again (zero when not open) — the value to surface in a Retry-After
// header.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != StateOpen {
		return 0
	}
	remaining := b.cfg.OpenFor - b.cfg.Now().Sub(b.openedAt)
	if remaining < 0 {
		return 0
	}
	return remaining
}

// Reset forces the breaker closed, clearing all counters — the hook a
// successful hot reload uses: the dependency was just replaced and
// validated, so its failure history is stale by construction.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.transition(StateClosed)
}
