package dataset

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{String("x"), KindString},
		{Number(1.5), KindNumber},
		{Int(7), KindNumber},
		{Time(time.Unix(1000, 0)), KindTime},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("kind of %v = %v, want %v", c.v, c.v.Kind, c.kind)
		}
	}
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if String("a").IsNull() {
		t.Error("String(a).IsNull() = true")
	}
}

func TestValueText(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), ""},
		{String("hello"), "hello"},
		{Number(2.5), "2.5"},
		{Int(42), "42"},
		{Time(time.Date(2020, 1, 2, 0, 0, 0, 0, time.UTC)), "2020-01-02T00:00:00Z"},
	}
	for _, c := range cases {
		if got := c.v.Text(); got != c.want {
			t.Errorf("Text(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueFloat(t *testing.T) {
	if f, ok := Number(3.25).Float(); !ok || f != 3.25 {
		t.Errorf("Number.Float() = %v, %v", f, ok)
	}
	if f, ok := String("1.5").Float(); !ok || f != 1.5 {
		t.Errorf("parseable string Float() = %v, %v", f, ok)
	}
	if _, ok := String("abc").Float(); ok {
		t.Error("non-numeric string reported a float")
	}
	if _, ok := Null().Float(); ok {
		t.Error("null reported a float")
	}
	if f, ok := Time(time.Unix(5, 0)).Float(); !ok || f != 5 {
		t.Errorf("time Float() = %v, %v", f, ok)
	}
}

func TestValueEqual(t *testing.T) {
	if !String("a").Equal(String("a")) {
		t.Error("equal strings not Equal")
	}
	if String("a").Equal(String("b")) {
		t.Error("different strings Equal")
	}
	if String("1").Equal(Number(1)) {
		t.Error("string and number Equal")
	}
	if !Null().Equal(Null()) {
		t.Error("nulls not Equal")
	}
	if !Number(2).Equal(Int(2)) {
		t.Error("Number(2) != Int(2)")
	}
}

// Property: number round-trips through Text for all finite floats.
func TestValueTextNumberRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := Number(x)
		got, ok := v.Float()
		return ok && got == x && String(v.Text()).Text() == v.Text()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
