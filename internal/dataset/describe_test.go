package dataset

import (
	"strings"
	"testing"
)

func TestDescribeColumnNumeric(t *testing.T) {
	c := &Column{Name: "x", Values: []Value{
		Number(1), Number(2), Number(3), Null(),
	}}
	s := DescribeColumn(c)
	if !s.Numeric {
		t.Fatal("numeric column not detected")
	}
	if s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Errorf("min/max/mean = %v/%v/%v", s.Min, s.Max, s.Mean)
	}
	if s.Nulls != 1 || s.NonNull != 3 || s.Distinct != 3 {
		t.Errorf("counts = %+v", s)
	}
	if s.NullFraction != 0.25 {
		t.Errorf("null fraction = %v", s.NullFraction)
	}
}

func TestDescribeColumnCategorical(t *testing.T) {
	c := &Column{Name: "cat", Values: []Value{
		String("b"), String("a"), String("a"), String("a"), String("c"),
	}}
	s := DescribeColumn(c)
	if s.Numeric {
		t.Fatal("string column marked numeric")
	}
	if len(s.TopValues) != 3 || s.TopValues[0] != "a" {
		t.Errorf("top values = %v", s.TopValues)
	}
	if s.Strings != 5 {
		t.Errorf("string count = %d", s.Strings)
	}
}

func TestDatabaseDescribe(t *testing.T) {
	db := NewDatabase(sampleTable())
	var b strings.Builder
	db.Describe(&b)
	out := b.String()
	for _, want := range []string{"table people", "3 rows", "id", "(key-like)", "numeric"} {
		if !strings.Contains(out, want) {
			t.Errorf("describe missing %q:\n%s", want, out)
		}
	}
}
