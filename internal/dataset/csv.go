package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// ReadCSV parses a CSV stream into a Table. The first record is the
// header. Cells that parse as floats become KindNumber; empty cells
// become KindNull; everything else (including dirty missing markers such
// as "?" or "N/A") stays KindString, because recognizing those markers is
// the pipeline's job, not the loader's.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv header for %q: %w", name, err)
	}
	t := NewTable(name, header...)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv %q line %d: %w", name, line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: csv %q line %d: %d fields, want %d", name, line, len(rec), len(header))
		}
		row := make([]Value, len(rec))
		for i, cell := range rec {
			row[i] = parseCell(cell)
		}
		t.AppendRow(row...)
	}
	return t, nil
}

func parseCell(s string) Value {
	if s == "" {
		return Null()
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Number(f)
	}
	return String(s)
}

// ReadCSVDir loads every *.csv file under dir (non-recursively) into a
// Database. Table names are the file names without extension.
func ReadCSVDir(dir string) (*Database, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dataset: read dir: %w", err)
	}
	db := &Database{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		if err := addCSVFile(db, dir, e); err != nil {
			return nil, err
		}
	}
	if len(db.Tables) == 0 {
		return nil, fmt.Errorf("dataset: no .csv files in %s", dir)
	}
	return db, nil
}

func addCSVFile(db *Database, dir string, e fs.DirEntry) error {
	path := filepath.Join(dir, e.Name())
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("dataset: open %s: %w", path, err)
	}
	defer f.Close()
	name := strings.TrimSuffix(e.Name(), ".csv")
	t, err := ReadCSV(name, f)
	if err != nil {
		return err
	}
	db.Add(t)
	return nil
}

// WriteCSV writes the table as CSV with a header row.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	rec := make([]string, t.NumCols())
	for i := 0; i < t.NumRows(); i++ {
		for j, c := range t.Columns {
			rec[j] = c.Values[i].Text()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
