package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV loader never panics and that anything it
// accepts survives a write/read round trip with identical shape.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,x\n2,y\n")
	f.Add("h\n\n")
	f.Add("a,b\n1\n")
	f.Add("x,y,z\n?,N/A,3.5\n")
	f.Add("\"q,uoted\",b\nv,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		tab, err := ReadCSV("t", strings.NewReader(input))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if err := tab.Validate(); err != nil {
			t.Fatalf("accepted table fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(tab, &buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadCSV("t", &buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.NumRows() != tab.NumRows() || back.NumCols() != tab.NumCols() {
			t.Fatalf("round trip shape %dx%d != %dx%d",
				back.NumRows(), back.NumCols(), tab.NumRows(), tab.NumCols())
		}
	})
}
