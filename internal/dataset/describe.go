package dataset

import (
	"fmt"
	"io"
	"sort"
)

// ColumnStats summarizes one column for profiling and the inspect CLI.
type ColumnStats struct {
	Name         string
	NonNull      int
	Nulls        int
	Distinct     int
	UniqueRatio  float64
	NullFraction float64
	// Kind counts per value kind.
	Strings, Numbers, Times int
	// Min/Max/Mean are set when the column is fully numeric.
	Min, Max, Mean float64
	Numeric        bool
	// TopValues holds up to 3 most frequent textual values.
	TopValues []string
}

// DescribeColumn computes summary statistics for a column.
func DescribeColumn(c *Column) ColumnStats {
	s := ColumnStats{Name: c.Name}
	distinct := map[Value]int{}
	var sum float64
	first := true
	for _, v := range c.Values {
		if v.IsNull() {
			s.Nulls++
			continue
		}
		s.NonNull++
		distinct[v]++
		switch v.Kind {
		case KindString:
			s.Strings++
		case KindNumber:
			s.Numbers++
		case KindTime:
			s.Times++
		}
		if f, ok := v.Float(); ok && v.Kind != KindString {
			sum += f
			if first || f < s.Min {
				s.Min = f
			}
			if first || f > s.Max {
				s.Max = f
			}
			first = false
		}
	}
	s.Distinct = len(distinct)
	if s.NonNull > 0 {
		s.UniqueRatio = float64(s.Distinct) / float64(s.NonNull)
	}
	if len(c.Values) > 0 {
		s.NullFraction = float64(s.Nulls) / float64(len(c.Values))
	}
	s.Numeric = s.NonNull > 0 && s.Numbers+s.Times == s.NonNull
	if s.Numeric {
		s.Mean = sum / float64(s.NonNull)
	} else {
		s.Min, s.Max = 0, 0
	}

	type vc struct {
		text  string
		count int
	}
	var top []vc
	for v, n := range distinct {
		top = append(top, vc{text: v.Text(), count: n})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].count != top[j].count {
			return top[i].count > top[j].count
		}
		return top[i].text < top[j].text
	})
	for i := 0; i < len(top) && i < 3; i++ {
		s.TopValues = append(s.TopValues, top[i].text)
	}
	return s
}

// Describe writes a human-readable profile of every table and column,
// the `leva inspect` output.
func (d *Database) Describe(w io.Writer) {
	names := d.TableNames()
	for _, name := range names {
		t := d.Table(name)
		fmt.Fprintf(w, "table %s: %d rows, %d columns\n", t.Name, t.NumRows(), t.NumCols())
		for _, c := range t.Columns {
			s := DescribeColumn(c)
			fmt.Fprintf(w, "  %-24s distinct=%-6d nulls=%.0f%%", s.Name, s.Distinct, 100*s.NullFraction)
			if s.Numeric {
				fmt.Fprintf(w, " numeric [%.4g, %.4g] mean=%.4g", s.Min, s.Max, s.Mean)
			} else {
				fmt.Fprintf(w, " top=%v", s.TopValues)
			}
			if s.UniqueRatio >= 0.95 && s.NonNull > 0 {
				fmt.Fprint(w, " (key-like)")
			}
			fmt.Fprintln(w)
		}
	}
}
