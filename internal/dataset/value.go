// Package dataset defines the relational data model Leva operates on:
// databases, tables, columns and cell values, together with CSV
// import/export and the schema metadata (keys and foreign keys) that the
// ground-truth baselines — and only the baselines — are allowed to see.
//
// Leva itself never reads key or foreign-key metadata: the whole point of
// the system is to reconstruct join information without it. The metadata
// lives here so that the Full, Full+FE and entity-resolution experiments
// can materialize correct joins to compare against.
package dataset

import (
	"fmt"
	"strconv"
	"time"
)

// Kind enumerates the storage type of a cell value.
type Kind uint8

const (
	// KindNull marks an absent value. Note that synthetic "dirty"
	// missing markers such as "?" or "N/A" are deliberately stored as
	// KindString: detecting them is Leva's job (Section 3.2 of the
	// paper), not the loader's.
	KindNull Kind = iota
	// KindString holds free text or categorical tokens.
	KindString
	// KindNumber holds integer or floating-point data as float64.
	KindNumber
	// KindTime holds datetime data as Unix seconds in Num.
	KindTime
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindNumber:
		return "number"
	case KindTime:
		return "time"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single relational cell. It is a small tagged union: Str is
// meaningful for KindString, Num for KindNumber (the value) and KindTime
// (Unix seconds). The zero Value is a null.
type Value struct {
	Kind Kind
	Str  string
	Num  float64
}

// Null returns the null value.
func Null() Value { return Value{Kind: KindNull} }

// String returns a string-kind value.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// Number returns a number-kind value.
func Number(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// Int returns a number-kind value from an integer.
func Int(i int) Value { return Value{Kind: KindNumber, Num: float64(i)} }

// Time returns a time-kind value.
func Time(t time.Time) Value { return Value{Kind: KindTime, Num: float64(t.Unix())} }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindString:
		return v.Str == o.Str
	default:
		return v.Num == o.Num
	}
}

// Text renders the value as the string a textification module would see.
// Numbers render with minimal digits; times render as RFC 3339 dates.
func (v Value) Text() string {
	switch v.Kind {
	case KindNull:
		return ""
	case KindString:
		return v.Str
	case KindNumber:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindTime:
		return time.Unix(int64(v.Num), 0).UTC().Format(time.RFC3339)
	default:
		return ""
	}
}

// Float returns the numeric interpretation of the value and whether one
// exists. Strings are parsed on demand; nulls report false.
func (v Value) Float() (float64, bool) {
	switch v.Kind {
	case KindNumber, KindTime:
		return v.Num, true
	case KindString:
		f, err := strconv.ParseFloat(v.Str, 64)
		if err != nil {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}
