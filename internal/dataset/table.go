package dataset

import (
	"fmt"
	"sort"
)

// Column is a named, column-oriented vector of values. Column-major
// storage matches Leva's streaming textification stage, which classifies
// one column at a time.
type Column struct {
	Name   string
	Values []Value
}

// Len returns the number of values in the column.
func (c *Column) Len() int { return len(c.Values) }

// UniqueRatio returns |distinct non-null values| / |non-null values|.
// It is the signal Leva's key-detection heuristic uses. A column with no
// non-null values has ratio zero.
func (c *Column) UniqueRatio() float64 {
	seen := make(map[Value]struct{}, len(c.Values))
	n := 0
	for _, v := range c.Values {
		if v.IsNull() {
			continue
		}
		n++
		seen[v] = struct{}{}
	}
	if n == 0 {
		return 0
	}
	return float64(len(seen)) / float64(n)
}

// NullFraction returns the fraction of null-kind values in the column.
func (c *Column) NullFraction() float64 {
	if len(c.Values) == 0 {
		return 0
	}
	n := 0
	for _, v := range c.Values {
		if v.IsNull() {
			n++
		}
	}
	return float64(n) / float64(len(c.Values))
}

// ForeignKey records that Column of the owning table references
// RefColumn of RefTable. Only ground-truth baselines may consult it.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// Table is a named collection of equal-length columns plus optional
// ground-truth schema metadata.
type Table struct {
	Name    string
	Columns []*Column

	// Keys lists primary-key column names (ground truth; hidden from
	// Leva's pipeline).
	Keys []string
	// ForeignKeys lists ground-truth foreign keys (hidden from Leva).
	ForeignKeys []ForeignKey

	index map[string]int // column name -> position, built lazily
}

// NewTable creates an empty table with the given column names.
func NewTable(name string, cols ...string) *Table {
	t := &Table{Name: name}
	for _, c := range cols {
		t.Columns = append(t.Columns, &Column{Name: c})
	}
	return t
}

// NumRows returns the number of rows (length of the first column).
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return len(t.Columns[0].Values)
}

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.Columns) }

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// Column returns the named column, or nil if absent.
func (t *Table) Column(name string) *Column {
	i, ok := t.colIndex(name)
	if !ok {
		return nil
	}
	return t.Columns[i]
}

// ColIndex returns the position of the named column.
func (t *Table) ColIndex(name string) (int, bool) { return t.colIndex(name) }

func (t *Table) colIndex(name string) (int, bool) {
	if t.index == nil || len(t.index) != len(t.Columns) {
		t.index = make(map[string]int, len(t.Columns))
		for i, c := range t.Columns {
			t.index[c.Name] = i
		}
	}
	i, ok := t.index[name]
	return i, ok
}

// AppendRow appends one row. It panics if the arity does not match; a
// malformed row is a programming error, not an input error.
func (t *Table) AppendRow(vals ...Value) {
	if len(vals) != len(t.Columns) {
		panic(fmt.Sprintf("dataset: AppendRow arity %d != %d columns in %q", len(vals), len(t.Columns), t.Name))
	}
	for i, v := range vals {
		t.Columns[i].Values = append(t.Columns[i].Values, v)
	}
}

// Row returns row i as a value slice in column order.
func (t *Table) Row(i int) []Value {
	row := make([]Value, len(t.Columns))
	for j, c := range t.Columns {
		row[j] = c.Values[i]
	}
	return row
}

// Cell returns the value at row i of the named column. It panics on an
// unknown column name.
func (t *Table) Cell(i int, col string) Value {
	j, ok := t.colIndex(col)
	if !ok {
		panic(fmt.Sprintf("dataset: table %q has no column %q", t.Name, col))
	}
	return t.Columns[j].Values[i]
}

// SetKeys records the ground-truth primary key columns.
func (t *Table) SetKeys(cols ...string) { t.Keys = cols }

// AddForeignKey records a ground-truth foreign key.
func (t *Table) AddForeignKey(col, refTable, refCol string) {
	t.ForeignKeys = append(t.ForeignKeys, ForeignKey{Column: col, RefTable: refTable, RefColumn: refCol})
}

// DropColumns returns a copy of the table without the named columns.
// Schema metadata referencing dropped columns is removed too.
func (t *Table) DropColumns(names ...string) *Table {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	out := &Table{Name: t.Name}
	for _, c := range t.Columns {
		if drop[c.Name] {
			continue
		}
		vals := make([]Value, len(c.Values))
		copy(vals, c.Values)
		out.Columns = append(out.Columns, &Column{Name: c.Name, Values: vals})
	}
	for _, k := range t.Keys {
		if !drop[k] {
			out.Keys = append(out.Keys, k)
		}
	}
	for _, fk := range t.ForeignKeys {
		if !drop[fk.Column] {
			out.ForeignKeys = append(out.ForeignKeys, fk)
		}
	}
	return out
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := &Table{Name: t.Name}
	for _, c := range t.Columns {
		vals := make([]Value, len(c.Values))
		copy(vals, c.Values)
		out.Columns = append(out.Columns, &Column{Name: c.Name, Values: vals})
	}
	out.Keys = append([]string(nil), t.Keys...)
	out.ForeignKeys = append([]ForeignKey(nil), t.ForeignKeys...)
	return out
}

// SelectRows returns a copy of the table containing only the rows whose
// indices appear in idx, in that order.
func (t *Table) SelectRows(idx []int) *Table {
	out := &Table{Name: t.Name, Keys: append([]string(nil), t.Keys...),
		ForeignKeys: append([]ForeignKey(nil), t.ForeignKeys...)}
	for _, c := range t.Columns {
		vals := make([]Value, 0, len(idx))
		for _, i := range idx {
			vals = append(vals, c.Values[i])
		}
		out.Columns = append(out.Columns, &Column{Name: c.Name, Values: vals})
	}
	return out
}

// Validate checks structural invariants: unique column names and equal
// column lengths. It returns a descriptive error on the first violation.
func (t *Table) Validate() error {
	seen := make(map[string]bool, len(t.Columns))
	for _, c := range t.Columns {
		if seen[c.Name] {
			return fmt.Errorf("dataset: table %q: duplicate column %q", t.Name, c.Name)
		}
		seen[c.Name] = true
	}
	if len(t.Columns) == 0 {
		return nil
	}
	n := len(t.Columns[0].Values)
	for _, c := range t.Columns[1:] {
		if len(c.Values) != n {
			return fmt.Errorf("dataset: table %q: column %q has %d values, want %d", t.Name, c.Name, len(c.Values), n)
		}
	}
	return nil
}

// Database is a named collection of tables.
type Database struct {
	Tables []*Table
}

// NewDatabase builds a database from tables.
func NewDatabase(tables ...*Table) *Database {
	return &Database{Tables: tables}
}

// Table returns the named table, or nil if absent.
func (d *Database) Table(name string) *Table {
	for _, t := range d.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Add appends a table to the database.
func (d *Database) Add(t *Table) { d.Tables = append(d.Tables, t) }

// TableNames returns table names sorted alphabetically.
func (d *Database) TableNames() []string {
	names := make([]string, len(d.Tables))
	for i, t := range d.Tables {
		names[i] = t.Name
	}
	sort.Strings(names)
	return names
}

// TotalRows returns the number of rows across all tables.
func (d *Database) TotalRows() int {
	n := 0
	for _, t := range d.Tables {
		n += t.NumRows()
	}
	return n
}

// TotalAttributes returns the number of columns across all tables.
func (d *Database) TotalAttributes() int {
	n := 0
	for _, t := range d.Tables {
		n += t.NumCols()
	}
	return n
}

// Validate validates every table and checks for duplicate table names.
func (d *Database) Validate() error {
	seen := make(map[string]bool, len(d.Tables))
	for _, t := range d.Tables {
		if seen[t.Name] {
			return fmt.Errorf("dataset: duplicate table %q", t.Name)
		}
		seen[t.Name] = true
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Without returns a copy of the database excluding the named tables.
// The remaining table structs are shared, not copied.
func (d *Database) Without(names ...string) *Database {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	out := &Database{}
	for _, t := range d.Tables {
		if !drop[t.Name] {
			out.Tables = append(out.Tables, t)
		}
	}
	return out
}
