package dataset

import (
	"repro/internal/fingerprint"
)

// Fingerprint domains. Bump the version suffix whenever the encoding
// below changes, so stale cache entries can never alias new ones.
const (
	tableFPDomain    = "leva/dataset-table/v1"
	databaseFPDomain = "leva/dataset-db/v1"
)

// Fingerprint returns a deterministic content hash of the table: its
// name, column names in order, and every cell value. Two tables with
// equal fingerprints textify and embed identically, which is what the
// staged pipeline's cache keys rely on.
//
// Ground-truth schema metadata (Keys, ForeignKeys) is deliberately
// excluded: Leva's pipeline never reads it, so it cannot affect any
// stage output.
func (t *Table) Fingerprint() string {
	h := fingerprint.New(tableFPDomain)
	t.fingerprintInto(h)
	return h.Sum()
}

func (t *Table) fingerprintInto(h *fingerprint.Hasher) {
	h.String(t.Name)
	h.Int(int64(len(t.Columns)))
	for _, c := range t.Columns {
		h.String(c.Name)
		h.Int(int64(len(c.Values)))
		for _, v := range c.Values {
			h.Uint(uint64(v.Kind))
			switch v.Kind {
			case KindString:
				h.String(v.Str)
			case KindNumber, KindTime:
				h.Float(v.Num)
			}
		}
	}
}

// Fingerprint returns a content hash of the whole database: every
// table's fingerprint, in table order. Table order matters — graph
// construction interns row nodes in table order — so a reordered
// database fingerprints differently.
func (d *Database) Fingerprint() string {
	h := fingerprint.New(databaseFPDomain)
	h.Int(int64(len(d.Tables)))
	for _, t := range d.Tables {
		t.fingerprintInto(h)
	}
	return h.Sum()
}
