package dataset

import "testing"

func fpTable() *Table {
	t := NewTable("orders", "id", "amount", "note")
	t.AppendRow(String("a"), Number(1.5), String("x"))
	t.AppendRow(String("b"), Number(2), Null())
	return t
}

func TestTableFingerprintStable(t *testing.T) {
	a, b := fpTable(), fpTable()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical tables fingerprint differently")
	}
	if a.Fingerprint() != a.Clone().Fingerprint() {
		t.Error("clone fingerprints differently")
	}
}

func TestTableFingerprintSensitivity(t *testing.T) {
	base := fpTable().Fingerprint()
	mutations := map[string]func(*Table){
		"cell value":     func(tb *Table) { tb.Columns[1].Values[0] = Number(1.6) },
		"cell kind":      func(tb *Table) { tb.Columns[0].Values[0] = Number(0) },
		"null vs empty":  func(tb *Table) { tb.Columns[2].Values[1] = String("") },
		"column name":    func(tb *Table) { tb.Columns[2].Name = "memo" },
		"table name":     func(tb *Table) { tb.Name = "orders2" },
		"appended row":   func(tb *Table) { tb.AppendRow(String("c"), Number(3), String("y")) },
		"column swapped": func(tb *Table) { tb.Columns[0], tb.Columns[1] = tb.Columns[1], tb.Columns[0] },
	}
	for name, mutate := range mutations {
		tb := fpTable()
		mutate(tb)
		if tb.Fingerprint() == base {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}
}

func TestTableFingerprintIgnoresHiddenMetadata(t *testing.T) {
	// Keys and foreign keys are invisible to the pipeline, so they must
	// not invalidate cache entries.
	a := fpTable()
	b := fpTable()
	b.SetKeys("id")
	b.AddForeignKey("id", "customers", "id")
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("ground-truth metadata changed the fingerprint")
	}
}

func TestDatabaseFingerprintOrderSensitive(t *testing.T) {
	t1, t2 := fpTable(), fpTable()
	t2.Name = "other"
	a := NewDatabase(t1, t2)
	b := NewDatabase(t2, t1)
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("table order does not affect the database fingerprint")
	}
	if a.Fingerprint() != NewDatabase(t1.Clone(), t2.Clone()).Fingerprint() {
		t.Error("equal databases fingerprint differently")
	}
}
