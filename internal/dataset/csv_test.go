package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadCSVParsesKinds(t *testing.T) {
	in := "id,name,score\n1,ann,3.5\n2,bob,\n3,?,2\n"
	tab, err := ReadCSV("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 || tab.NumCols() != 3 {
		t.Fatalf("shape %dx%d", tab.NumRows(), tab.NumCols())
	}
	if v := tab.Cell(0, "id"); v.Kind != KindNumber || v.Num != 1 {
		t.Errorf("id cell = %+v", v)
	}
	if v := tab.Cell(1, "score"); !v.IsNull() {
		t.Errorf("empty cell not null: %+v", v)
	}
	// Dirty markers stay strings; detecting them is the pipeline's job.
	if v := tab.Cell(2, "name"); v.Kind != KindString || v.Str != "?" {
		t.Errorf("dirty marker = %+v", v)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("")); err == nil {
		t.Error("empty input did not error")
	}
	if _, err := ReadCSV("t", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("short row did not error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := sampleTable()
	var buf bytes.Buffer
	if err := WriteCSV(tab, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("people", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tab.NumRows() || back.NumCols() != tab.NumCols() {
		t.Fatalf("round trip shape %dx%d", back.NumRows(), back.NumCols())
	}
	if !back.Cell(1, "name").Equal(String("bob")) {
		t.Errorf("round trip cell = %v", back.Cell(1, "name"))
	}
	if !back.Cell(2, "age").IsNull() {
		t.Errorf("null did not round trip: %v", back.Cell(2, "age"))
	}
}

func TestReadCSVDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.csv", "x\n1\n")
	write("b.csv", "y\nfoo\n")
	write("ignored.txt", "not a table")

	db, err := ReadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(db.Tables))
	}
	if db.Table("a") == nil || db.Table("b") == nil {
		t.Error("tables not named after files")
	}

	empty := t.TempDir()
	if _, err := ReadCSVDir(empty); err == nil {
		t.Error("empty dir did not error")
	}
}
