package dataset

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("people", "id", "name", "age")
	t.AppendRow(Int(1), String("ann"), Number(30))
	t.AppendRow(Int(2), String("bob"), Number(25))
	t.AppendRow(Int(3), String("cyd"), Null())
	return t
}

func TestTableBasics(t *testing.T) {
	tab := sampleTable()
	if tab.NumRows() != 3 || tab.NumCols() != 3 {
		t.Fatalf("shape = %dx%d, want 3x3", tab.NumRows(), tab.NumCols())
	}
	if got := tab.Cell(1, "name"); !got.Equal(String("bob")) {
		t.Errorf("Cell(1, name) = %v", got)
	}
	row := tab.Row(0)
	if len(row) != 3 || !row[1].Equal(String("ann")) {
		t.Errorf("Row(0) = %v", row)
	}
	if names := tab.ColumnNames(); strings.Join(names, ",") != "id,name,age" {
		t.Errorf("ColumnNames = %v", names)
	}
	if tab.Column("nope") != nil {
		t.Error("Column(nope) != nil")
	}
}

func TestTableAppendRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AppendRow with wrong arity did not panic")
		}
	}()
	sampleTable().AppendRow(Int(1))
}

func TestUniqueRatioAndNullFraction(t *testing.T) {
	tab := sampleTable()
	if r := tab.Column("id").UniqueRatio(); r != 1 {
		t.Errorf("id UniqueRatio = %v, want 1", r)
	}
	c := &Column{Name: "dup", Values: []Value{String("x"), String("x"), String("y"), Null()}}
	if r := c.UniqueRatio(); r != 2.0/3.0 {
		t.Errorf("dup UniqueRatio = %v, want 2/3", r)
	}
	if f := c.NullFraction(); f != 0.25 {
		t.Errorf("NullFraction = %v, want 0.25", f)
	}
	empty := &Column{Name: "e"}
	if empty.UniqueRatio() != 0 || empty.NullFraction() != 0 {
		t.Error("empty column ratios not zero")
	}
}

func TestDropColumns(t *testing.T) {
	tab := sampleTable()
	tab.SetKeys("id")
	tab.AddForeignKey("name", "other", "name")
	out := tab.DropColumns("name")
	if out.NumCols() != 2 {
		t.Fatalf("cols after drop = %d", out.NumCols())
	}
	if out.Column("name") != nil {
		t.Error("dropped column still present")
	}
	if len(out.ForeignKeys) != 0 {
		t.Error("FK referencing dropped column kept")
	}
	if len(out.Keys) != 1 || out.Keys[0] != "id" {
		t.Errorf("keys = %v", out.Keys)
	}
	// Original untouched.
	if tab.NumCols() != 3 {
		t.Error("DropColumns mutated the original")
	}
}

func TestSelectRowsAndClone(t *testing.T) {
	tab := sampleTable()
	sub := tab.SelectRows([]int{2, 0})
	if sub.NumRows() != 2 {
		t.Fatalf("sub rows = %d", sub.NumRows())
	}
	if !sub.Cell(0, "name").Equal(String("cyd")) || !sub.Cell(1, "name").Equal(String("ann")) {
		t.Errorf("SelectRows order wrong: %v, %v", sub.Cell(0, "name"), sub.Cell(1, "name"))
	}
	cl := tab.Clone()
	cl.Columns[0].Values[0] = Int(99)
	if tab.Cell(0, "id").Num == 99 {
		t.Error("Clone shares storage with original")
	}
}

func TestTableValidate(t *testing.T) {
	tab := sampleTable()
	if err := tab.Validate(); err != nil {
		t.Errorf("valid table: %v", err)
	}
	tab.Columns[1].Values = tab.Columns[1].Values[:2]
	if err := tab.Validate(); err == nil {
		t.Error("ragged table validated")
	}
	dup := NewTable("d", "a", "a")
	if err := dup.Validate(); err == nil {
		t.Error("duplicate columns validated")
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase(sampleTable())
	other := NewTable("orders", "id")
	other.AppendRow(Int(1))
	db.Add(other)

	if db.Table("people") == nil || db.Table("orders") == nil {
		t.Fatal("lookup failed")
	}
	if db.Table("missing") != nil {
		t.Error("lookup of missing table succeeded")
	}
	if got := db.TotalRows(); got != 4 {
		t.Errorf("TotalRows = %d, want 4", got)
	}
	if got := db.TotalAttributes(); got != 4 {
		t.Errorf("TotalAttributes = %d, want 4", got)
	}
	if err := db.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "orders" {
		t.Errorf("TableNames = %v", names)
	}
	rest := db.Without("people")
	if len(rest.Tables) != 1 || rest.Tables[0].Name != "orders" {
		t.Errorf("Without = %v", rest.TableNames())
	}
	db.Add(sampleTable())
	if err := db.Validate(); err == nil {
		t.Error("duplicate table names validated")
	}
}
