package leva

import "repro/internal/ml"

// Downstream-model substrate, re-exported so examples and users can run
// the full train-featurize-fit loop against one import. These are the
// model families the paper evaluates (Section 6.1): random forests,
// (logistic) linear models with ElasticNet, and a 2-layer fully
// connected network.
type (
	// RandomForest classifies or regresses with bagged CART trees.
	RandomForest = ml.RandomForest
	// LogisticRegression is softmax regression with ElasticNet.
	LogisticRegression = ml.LogisticRegression
	// LinearRegression is OLS/ridge regression.
	LinearRegression = ml.LinearRegression
	// ElasticNetRegression is L1+L2-penalized linear regression.
	ElasticNetRegression = ml.ElasticNetRegression
	// MLP is the 2-layer fully connected network with dropout.
	MLP = ml.MLP
	// Standardizer rescales features to zero mean and unit variance.
	Standardizer = ml.Standardizer
	// Split is a train/test index partition.
	Split = ml.Split
)

// Metrics and helpers.
var (
	// Accuracy is the fraction of exact label matches.
	Accuracy = ml.Accuracy
	// MAE is the mean absolute error.
	MAE = ml.MAE
	// R2 is the coefficient of determination.
	R2 = ml.R2
	// MacroF1 averages per-class F1.
	MacroF1 = ml.MacroF1
	// TrainTestSplit shuffles and partitions row indices.
	TrainTestSplit = ml.TrainTestSplit
	// FitStandardizer computes feature moments on training data.
	FitStandardizer = ml.FitStandardizer
)
