#!/bin/sh
# Full verification gate: build, vet, race-checked tests, and an HTTP
# smoke test of the levad serving daemon end to end (generate data,
# build a bundle, serve it, featurize over the wire, drain on SIGTERM).
# The race run is slow (the experiment suites re-run under -race);
# expect several minutes on a small machine.
set -eux
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

# --- levad smoke test -------------------------------------------------
# Exercises the real binaries, not the in-process test harness: a
# levagen-generated dataset goes through `leva embed -bundle`, levad
# serves the bundle on an ephemeral port, and curl drives the API.
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT

go build -o "$SMOKE/bin/" ./cmd/leva ./cmd/levad ./cmd/levagen

"$SMOKE/bin/levagen" -dataset student -scale 0.05 -seed 7 -out "$SMOKE/csv"
"$SMOKE/bin/leva" embed -data "$SMOKE/csv" -dim 8 -seed 7 \
    -out "$SMOKE/embedding.tsv" -bundle "$SMOKE/bundle"

"$SMOKE/bin/levad" -bundle "$SMOKE/bundle" -addr 127.0.0.1:0 \
    -debug-addr 127.0.0.1:0 -ready-file "$SMOKE/addr" 2>"$SMOKE/levad.log" &
LEVAD_PID=$!

# Wait for the daemon to publish its bound address.
i=0
while [ ! -s "$SMOKE/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "levad never became ready" >&2
        cat "$SMOKE/levad.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$SMOKE/addr")

curl -fsS "http://$ADDR/healthz"
curl -fsS -X POST "http://$ADDR/v1/featurize" \
    -H 'Content-Type: application/json' \
    -d '{"table":"expenses","rows":[{"name":"student_00001","gender":"female","school_name":"school_1"}],"exclude":["total_expenses"]}' \
    | grep -q '"features"'
# /metrics serves Prometheus text by default and the legacy JSON
# snapshot behind ?format=json; both must render from one registry.
curl -fsS "http://$ADDR/metrics" | grep -q '^leva_http_requests_total{endpoint="featurize"} 1$'
curl -fsS "http://$ADDR/metrics?format=json" | grep -q '"requests"'

# The -debug-addr listener: pprof and the registry as JSON.
DEBUG_ADDR=$(cat "$SMOKE/addr.debug")
curl -fsS "http://$DEBUG_ADDR/debug/vars" | grep -q '"leva_http_requests_total"'
curl -fsS "http://$DEBUG_ADDR/debug/pprof/cmdline" > /dev/null

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$LEVAD_PID"
wait "$LEVAD_PID"

echo "levad smoke test passed"

# --- corruption smoke test --------------------------------------------
# A single flipped byte in a published bundle must be refused — by the
# daemon at startup and by `leva apply` — with an error that names the
# integrity check, never silently served. Bundles are one binary file
# (bundle.bin, formatVersion 5) sealed by MANIFEST.json.
cp -r "$SMOKE/bundle" "$SMOKE/bundle_corrupt"
printf '\377' | dd of="$SMOKE/bundle_corrupt/bundle.bin" \
    bs=1 count=1 seek=12 conv=notrunc 2>/dev/null

if "$SMOKE/bin/leva" apply -bundle "$SMOKE/bundle_corrupt" -data "$SMOKE/csv" \
    -table expenses -out "$SMOKE/never.tsv" 2>"$SMOKE/apply_corrupt.log"; then
    echo "leva apply accepted a corrupt bundle" >&2
    exit 1
fi
grep -q 'bundle.bin' "$SMOKE/apply_corrupt.log"
grep -qi 'MANIFEST\|SHA-256' "$SMOKE/apply_corrupt.log"

if "$SMOKE/bin/levad" -bundle "$SMOKE/bundle_corrupt" -addr 127.0.0.1:0 \
    2>"$SMOKE/levad_corrupt.log"; then
    echo "levad served a corrupt bundle" >&2
    exit 1
fi
grep -q 'bundle.bin' "$SMOKE/levad_corrupt.log"

echo "corruption smoke test passed"

# --- live hot-reload smoke test ---------------------------------------
# Republish the bundle (new seed, same dim) while the daemon serves
# continuous traffic, SIGHUP it, and require: zero non-200 responses
# across the swap, the new embedding actually served, and a reload
# recorded on /metrics.
rm -f "$SMOKE/addr"
"$SMOKE/bin/levad" -bundle "$SMOKE/bundle" -addr 127.0.0.1:0 \
    -ready-file "$SMOKE/addr" 2>"$SMOKE/levad_reload.log" &
LEVAD_PID=$!
i=0
while [ ! -s "$SMOKE/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "levad (reload run) never became ready" >&2
        cat "$SMOKE/levad_reload.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$SMOKE/addr")

FEAT_BODY='{"table":"expenses","rows":[{"name":"student_00001","gender":"female","school_name":"school_1"}],"exclude":["total_expenses"]}'
BEFORE=$(curl -fsS -X POST "http://$ADDR/v1/featurize" \
    -H 'Content-Type: application/json' -d "$FEAT_BODY")

: > "$SMOKE/codes"
(
    while [ ! -f "$SMOKE/stop_traffic" ]; do
        curl -s -o /dev/null -w '%{http_code}\n' -X POST "http://$ADDR/v1/featurize" \
            -H 'Content-Type: application/json' -d "$FEAT_BODY" >> "$SMOKE/codes" || true
    done
) &
TRAFFIC_PID=$!

# Atomically publish a different embedding (new seed, same dim) into
# the same directory, then hot-reload under the concurrent traffic.
"$SMOKE/bin/leva" embed -data "$SMOKE/csv" -dim 8 -seed 8 \
    -out "$SMOKE/embedding2.tsv" -bundle "$SMOKE/bundle"
kill -HUP "$LEVAD_PID"

i=0
until curl -fsS "http://$ADDR/healthz" | grep -q '"generation":2'; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "reload never completed" >&2
        cat "$SMOKE/levad_reload.log" >&2
        exit 1
    fi
    sleep 0.1
done

touch "$SMOKE/stop_traffic"
wait "$TRAFFIC_PID"

# Zero dropped or failed requests across the swap.
test -s "$SMOKE/codes"
if grep -qv '^200$' "$SMOKE/codes"; then
    echo "non-200 responses during hot reload:" >&2
    sort "$SMOKE/codes" | uniq -c >&2
    exit 1
fi

# The new embedding is actually serving (seed changed, so features
# must differ), and /metrics shows the reload.
AFTER=$(curl -fsS -X POST "http://$ADDR/v1/featurize" \
    -H 'Content-Type: application/json' -d "$FEAT_BODY")
if [ "$BEFORE" = "$AFTER" ]; then
    echo "featurization unchanged after reload" >&2
    exit 1
fi
curl -fsS "http://$ADDR/metrics" | grep -q '^leva_reloads_total 1$'
curl -fsS "http://$ADDR/metrics" | grep -q '^leva_bundle_generation 2$'
curl -fsS "http://$ADDR/metrics?format=json" | grep -q '"reload"'

kill -TERM "$LEVAD_PID"
wait "$LEVAD_PID"

echo "hot-reload smoke test passed"

# --- stage-cache smoke test -------------------------------------------
# Exercises the content-addressed incremental pipeline through the real
# binary: two identical builds against one cache must be all-stage hits
# with byte-identical output; mutating one CSV must re-tokenize only
# that table (textify=partial) and rebuild only the downstream stages.
CACHE="$SMOKE/stage-cache"

"$SMOKE/bin/leva" embed -data "$SMOKE/csv" -dim 8 -seed 7 -workers 1 \
    -cache "$CACHE" -out "$SMOKE/cache_cold.tsv" > "$SMOKE/cache_cold.log"
grep -q 'cache: textify=rebuilt tables=0/3 graph=rebuilt embed=rebuilt' "$SMOKE/cache_cold.log"

"$SMOKE/bin/leva" embed -data "$SMOKE/csv" -dim 8 -seed 7 -workers 1 \
    -cache "$CACHE" -out "$SMOKE/cache_warm.tsv" -metrics-dump \
    > "$SMOKE/cache_warm.log" 2> "$SMOKE/cache_warm_metrics.log"
grep -q 'cache: textify=cached tables=3/3 graph=cached embed=cached' "$SMOKE/cache_warm.log"
cmp "$SMOKE/cache_cold.tsv" "$SMOKE/cache_warm.tsv"

# -metrics-dump prints the build registry (Prometheus text) on stderr,
# and its cache counters agree with the report line: a fully warm build
# is two hits, zero misses.
grep -q '^# TYPE leva_build_stage_duration_seconds histogram$' "$SMOKE/cache_warm_metrics.log"
grep -q '^leva_builds_total 1$' "$SMOKE/cache_warm_metrics.log"
grep -q '^leva_build_cache_lookups_total{stage="embed",outcome="hit"} 1$' "$SMOKE/cache_warm_metrics.log"

# Mutate a single table: append a copy of the last data row.
LAST_ROW=$(tail -n 1 "$SMOKE/csv/price_info.csv")
printf '%s\n' "$LAST_ROW" >> "$SMOKE/csv/price_info.csv"

"$SMOKE/bin/leva" embed -data "$SMOKE/csv" -dim 8 -seed 7 -workers 1 \
    -cache "$CACHE" -out "$SMOKE/cache_mut.tsv" > "$SMOKE/cache_mut.log"
grep -q 'cache: textify=partial tables=2/3 graph=rebuilt embed=rebuilt' "$SMOKE/cache_mut.log"

echo "stage-cache smoke test passed"

# --- ANN index smoke test ---------------------------------------------
# The HNSW index artifact end to end: `leva embed -index` publishes it
# (durably, content-addressed in the stage cache), `leva neighbors`
# queries it from the shell, levad serves it behind /v1/neighbors, and
# one SIGHUP hot-reloads bundle and index together without dropping the
# endpoint.
"$SMOKE/bin/leva" embed -data "$SMOKE/csv" -dim 8 -seed 7 -workers 1 \
    -cache "$CACHE" -out "$SMOKE/ann_emb.tsv" -bundle "$SMOKE/bundle_ann" \
    -index "$SMOKE/index" > "$SMOKE/ann_embed.log"
grep -q 'saved ANN index' "$SMOKE/ann_embed.log"
test -s "$SMOKE/index/index.bin"
test -s "$SMOKE/index/MANIFEST.json"

# Rebuilding with the same inputs serves the index from the stage cache.
"$SMOKE/bin/leva" embed -data "$SMOKE/csv" -dim 8 -seed 7 -workers 1 \
    -cache "$CACHE" -out "$SMOKE/ann_emb2.tsv" -index "$SMOKE/index2" \
    > "$SMOKE/ann_embed2.log"
grep -q 'vectors, cached' "$SMOKE/ann_embed2.log"
cmp "$SMOKE/index/index.bin" "$SMOKE/index2/index.bin"

# Shell query: row entities are keyed "table:rowIdx".
"$SMOKE/bin/leva" neighbors -index "$SMOKE/index" -token "expenses:0" -k 5 \
    > "$SMOKE/neighbors.tsv"
test "$(wc -l < "$SMOKE/neighbors.tsv")" -eq 5

rm -f "$SMOKE/addr"
"$SMOKE/bin/levad" -bundle "$SMOKE/bundle_ann" -index "$SMOKE/index" \
    -addr 127.0.0.1:0 -ready-file "$SMOKE/addr" 2>"$SMOKE/levad_ann.log" &
LEVAD_PID=$!
i=0
while [ ! -s "$SMOKE/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "levad (ann run) never became ready" >&2
        cat "$SMOKE/levad_ann.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$SMOKE/addr")

curl -fsS "http://$ADDR/healthz" | grep -q '"annVectors"'
curl -fsS "http://$ADDR/v1/neighbors?token=expenses:0&k=5" \
    | grep -q '"neighbors"'
curl -fsS -X POST "http://$ADDR/v1/neighbors" \
    -H 'Content-Type: application/json' \
    -d '{"token":"expenses:0","k":3}' | grep -q '"neighbors"'
# An unknown token is a clean 404, not an error page.
CODE=$(curl -s -o /dev/null -w '%{http_code}' \
    "http://$ADDR/v1/neighbors?token=definitely-not-indexed")
test "$CODE" = "404"
curl -fsS "http://$ADDR/metrics" | grep -q '^leva_ann_index_size [1-9]'
curl -fsS "http://$ADDR/metrics" | grep -q '^leva_ann_queries_total'

# Republish bundle AND index with a new seed, hot-reload, and query the
# swapped-in index.
"$SMOKE/bin/leva" embed -data "$SMOKE/csv" -dim 8 -seed 9 -workers 1 \
    -cache "$CACHE" -out "$SMOKE/ann_emb3.tsv" -bundle "$SMOKE/bundle_ann" \
    -index "$SMOKE/index" > /dev/null
kill -HUP "$LEVAD_PID"
i=0
until curl -fsS "http://$ADDR/healthz" | grep -q '"generation":2'; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "ann hot reload never completed" >&2
        cat "$SMOKE/levad_ann.log" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS "http://$ADDR/v1/neighbors?token=expenses:0&k=5" \
    | grep -q '"neighbors"'
curl -fsS "http://$ADDR/metrics" | grep -q '^leva_reloads_total 1$'

kill -TERM "$LEVAD_PID"
wait "$LEVAD_PID"

echo "ann index smoke test passed"

# --- chaos / resilience smoke test ------------------------------------
# Arm the chaos harness against the ANN dependency (30% injected errors,
# 400ms injected latency on half the calls, against a 200ms dependency
# budget) and require: every neighbor query still answers a complete 200
# within the curl budget (degraded answers fall back to the exact scan,
# never a hung or hybrid response), the breaker transitions are visible
# on /metrics, a saturation burst sheds 429s carrying Retry-After, and
# disabling chaos at runtime recovers full, non-degraded service.
rm -f "$SMOKE/addr"
"$SMOKE/bin/levad" -bundle "$SMOKE/bundle_ann" -index "$SMOKE/index" \
    -addr 127.0.0.1:0 -ready-file "$SMOKE/addr" \
    -chaos 'seed=1;ann:err=0.3,lat=400ms,latrate=0.5' \
    -dep-timeout 200ms -breaker-failures 3 -breaker-open-for 1s \
    -max-inflight 2 -queue 0 2>"$SMOKE/levad_chaos.log" &
LEVAD_PID=$!
i=0
while [ ! -s "$SMOKE/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "levad (chaos run) never became ready" >&2
        cat "$SMOKE/levad_chaos.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$SMOKE/addr")

curl -fsS "http://$ADDR/healthz" | grep -q '"chaosEnabled":true'
curl -fsS "http://$ADDR/admin/chaos" | grep -q '"ann"'

: > "$SMOKE/chaos_codes"
i=0
while [ "$i" -lt 100 ]; do
    i=$((i + 1))
    curl -s --max-time 2 -o "$SMOKE/chaos_body" -w '%{http_code}\n' \
        "http://$ADDR/v1/neighbors?token=expenses:0&k=5" >> "$SMOKE/chaos_codes"
    # Hybrid guard: a degraded answer must never claim a cache hit.
    if grep -q '"degraded":true' "$SMOKE/chaos_body" \
        && grep -q '"cacheHit":true' "$SMOKE/chaos_body"; then
        echo "hybrid response: degraded and cacheHit both true" >&2
        exit 1
    fi
done
# Bounded tail latency: --max-time 2 turns a hang into a non-200 line.
if grep -qv '^200$' "$SMOKE/chaos_codes"; then
    echo "non-200 responses under ANN chaos (fallback must keep serving):" >&2
    sort "$SMOKE/chaos_codes" | uniq -c >&2
    exit 1
fi
curl -fsS "http://$ADDR/metrics" > "$SMOKE/chaos_metrics"
grep -q 'leva_resilience_degraded_total{endpoint="neighbors"} [1-9]' "$SMOKE/chaos_metrics"
grep -q 'leva_resilience_chaos_injections_total{target="ann"' "$SMOKE/chaos_metrics"
grep -q 'leva_resilience_breaker_transitions_total{dep="ann",to="open"} [1-9]' "$SMOKE/chaos_metrics"

# Saturation burst: 12 concurrent queries against 2 admission slots and
# no queue must shed — with 429s that carry Retry-After. Re-arm the
# harness with pure sub-budget latency first (no errors), so the breaker
# closes and every admitted request holds its slot for ~150ms.
curl -fsS -X POST "http://$ADDR/admin/chaos" -H 'Content-Type: application/json' \
    -d '{"rules": {"ann": {"errRate": 0, "latencyMs": 150, "latencyRate": 1}}}' \
    > /dev/null
i=0
until curl -fsS "http://$ADDR/healthz" | grep -q '"status":"ok"'; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "ann breaker never closed under success-only chaos" >&2
        curl -fsS "http://$ADDR/healthz" >&2 || true
        exit 1
    fi
    curl -s -o /dev/null "http://$ADDR/v1/neighbors?token=expenses:0&k=5"
    sleep 0.1
done
: > "$SMOKE/burst_codes"
rm -f "$SMOKE"/chaos_hdr_*
# Subshell so the bare wait sees only the burst curls, not the daemon.
(
    i=0
    while [ "$i" -lt 12 ]; do
        i=$((i + 1))
        curl -s --max-time 2 -o /dev/null -D "$SMOKE/chaos_hdr_$i" \
            -w '%{http_code}\n' "http://$ADDR/v1/neighbors?token=expenses:0&k=5" \
            >> "$SMOKE/burst_codes" &
    done
    wait
)
grep -q '^429$' "$SMOKE/burst_codes"
SHED=0
for f in "$SMOKE"/chaos_hdr_*; do
    if grep -q ' 429' "$f"; then
        SHED=1
        grep -qi '^retry-after:' "$f"
    fi
done
test "$SHED" = "1"
curl -fsS "http://$ADDR/metrics" | grep -q 'leva_shed_total{reason='

# Recovery: disable chaos at runtime, drive traffic until the breaker
# probes its way closed, then require clean (non-degraded) service.
curl -fsS -X POST "http://$ADDR/admin/chaos" -H 'Content-Type: application/json' \
    -d '{"enabled": false}' | grep -q '"enabled":false'
i=0
until curl -fsS "http://$ADDR/healthz" | grep -q '"status":"ok"'; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "breaker never recovered after chaos was disabled" >&2
        curl -fsS "http://$ADDR/healthz" >&2 || true
        exit 1
    fi
    curl -s -o /dev/null "http://$ADDR/v1/neighbors?token=expenses:0&k=5"
    sleep 0.1
done
curl -fsS "http://$ADDR/v1/neighbors?token=expenses:0&k=5" > "$SMOKE/chaos_clean"
grep -q '"neighbors"' "$SMOKE/chaos_clean"
if grep -q '"degraded":true' "$SMOKE/chaos_clean"; then
    echo "still degraded after recovery" >&2
    exit 1
fi
curl -fsS "http://$ADDR/metrics" | grep -q 'leva_resilience_chaos_enabled 0'

kill -TERM "$LEVAD_PID"
wait "$LEVAD_PID"

echo "chaos resilience smoke test passed"

# --- bundle migration smoke test --------------------------------------
# The binary (formatVersion 5) and legacy JSON (formatVersion 3)
# layouts must be interchangeable on the wire: convert the ann bundle
# to the legacy layout with `leva bundle convert`, serve both against
# the same index (the v5 daemon with -mmap, exercising the zero-copy
# fast path), and require byte-identical /v1/featurize and
# /v1/neighbors responses. The legacy load must warn but still serve.
"$SMOKE/bin/leva" bundle info "$SMOKE/bundle_ann" > "$SMOKE/info_v4.log"
grep -q 'version 5' "$SMOKE/info_v4.log"
grep -q 'bundle.bin' "$SMOKE/info_v4.log"

"$SMOKE/bin/leva" bundle convert -in "$SMOKE/bundle_ann" \
    -out "$SMOKE/bundle_legacy" -format legacy > "$SMOKE/convert.log"
"$SMOKE/bin/leva" bundle info "$SMOKE/bundle_legacy" > "$SMOKE/info_v3.log"
grep -q 'version 3' "$SMOKE/info_v3.log"
grep -q 'legacy JSON' "$SMOKE/info_v3.log"

FEAT_BODY='{"table":"expenses","rows":[{"name":"student_00001","gender":"female","school_name":"school_1"}],"exclude":["total_expenses"]}'

rm -f "$SMOKE/addr"
"$SMOKE/bin/levad" -bundle "$SMOKE/bundle_ann" -index "$SMOKE/index" -mmap \
    -addr 127.0.0.1:0 -ready-file "$SMOKE/addr" 2>"$SMOKE/levad_v4.log" &
LEVAD_PID=$!
i=0
while [ ! -s "$SMOKE/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "levad (v4 migration run) never became ready" >&2
        cat "$SMOKE/levad_v4.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$SMOKE/addr")
curl -fsS "http://$ADDR/healthz" | grep -q '"bundleFormat":5'
curl -fsS -X POST "http://$ADDR/v1/featurize" \
    -H 'Content-Type: application/json' -d "$FEAT_BODY" > "$SMOKE/v4_features.json"
curl -fsS "http://$ADDR/v1/neighbors?token=expenses:0&k=5" > "$SMOKE/v4_neighbors.json"
kill -TERM "$LEVAD_PID"
wait "$LEVAD_PID"

rm -f "$SMOKE/addr"
"$SMOKE/bin/levad" -bundle "$SMOKE/bundle_legacy" -index "$SMOKE/index" \
    -addr 127.0.0.1:0 -ready-file "$SMOKE/addr" 2>"$SMOKE/levad_v3.log" &
LEVAD_PID=$!
i=0
while [ ! -s "$SMOKE/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "levad (legacy migration run) never became ready" >&2
        cat "$SMOKE/levad_v3.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$SMOKE/addr")
grep -q 'legacy JSON bundle' "$SMOKE/levad_v3.log"
curl -fsS "http://$ADDR/healthz" | grep -q '"bundleFormat":3'
curl -fsS -X POST "http://$ADDR/v1/featurize" \
    -H 'Content-Type: application/json' -d "$FEAT_BODY" > "$SMOKE/v3_features.json"
curl -fsS "http://$ADDR/v1/neighbors?token=expenses:0&k=5" > "$SMOKE/v3_neighbors.json"
kill -TERM "$LEVAD_PID"
wait "$LEVAD_PID"

cmp "$SMOKE/v4_features.json" "$SMOKE/v3_features.json"
cmp "$SMOKE/v4_neighbors.json" "$SMOKE/v3_neighbors.json"

echo "bundle migration smoke test passed"

# --- int8 quantization smoke test -------------------------------------
# `leva embed -quantize` publishes a bundle with the v5 quant section
# (and the same float index artifact — quantization is a serving-time
# transform), levad -quantize serves neighbors from the int8 arena while
# /v1/featurize stays byte-identical to the float daemon, and 10 SIGHUP
# hot reloads under -mmap leave the daemon's bundle mapping count flat
# (the retired-generation munmap regression guard).
"$SMOKE/bin/leva" embed -data "$SMOKE/csv" -dim 8 -seed 9 -workers 1 \
    -cache "$CACHE" -out "$SMOKE/quant_emb.tsv" -bundle "$SMOKE/bundle_quant" \
    -index "$SMOKE/index_quant" -quantize > "$SMOKE/quant_embed.log"
grep -q 'quantized: int8 arena' "$SMOKE/quant_embed.log"
"$SMOKE/bin/leva" bundle info "$SMOKE/bundle_quant" > "$SMOKE/info_quant.log"
grep -q 'version 5' "$SMOKE/info_quant.log"
grep -q 'quantized:' "$SMOKE/info_quant.log"
# The saved index artifact is the same float index either way; the
# quant arena never changes what is published.
cmp "$SMOKE/index/index.bin" "$SMOKE/index_quant/index.bin"

rm -f "$SMOKE/addr"
"$SMOKE/bin/levad" -bundle "$SMOKE/bundle_quant" -index "$SMOKE/index_quant" \
    -quantize -mmap -addr 127.0.0.1:0 -ready-file "$SMOKE/addr" \
    2>"$SMOKE/levad_quant.log" &
LEVAD_PID=$!
i=0
while [ ! -s "$SMOKE/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "levad (quant run) never became ready" >&2
        cat "$SMOKE/levad_quant.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$SMOKE/addr")

curl -fsS "http://$ADDR/healthz" | grep -q '"quantized":true'
curl -fsS "http://$ADDR/metrics" | grep -q '^leva_quant_enabled 1$'
curl -fsS "http://$ADDR/metrics" | grep -q '^leva_quant_arena_bytes [1-9]'
curl -fsS "http://$ADDR/v1/neighbors?token=expenses:0&k=5" \
    | grep -q '"neighbors"'
curl -fsS "http://$ADDR/metrics" | grep -q '^leva_quant_queries_total [1-9]'
curl -fsS "http://$ADDR/metrics" | grep -q '^leva_quant_reranked_total [1-9]'

# Featurization is untouched by quantization: the bundle shares its
# float arena with the seed-9 bundle the migration test served, so the
# responses must be byte-identical.
curl -fsS -X POST "http://$ADDR/v1/featurize" \
    -H 'Content-Type: application/json' -d "$FEAT_BODY" > "$SMOKE/quant_features.json"
cmp "$SMOKE/v4_features.json" "$SMOKE/quant_features.json"

# Reload-leak guard: every SIGHUP remaps the bundle; the retired
# generation must be munmap'd once its requests drain, so the mapping
# count in /proc/<pid>/maps stays exactly where it started.
if [ -r "/proc/$LEVAD_PID/maps" ]; then
    MAPS_BEFORE=$(grep -c 'bundle_quant' "/proc/$LEVAD_PID/maps" || true)
    i=0
    while [ "$i" -lt 10 ]; do
        i=$((i + 1))
        kill -HUP "$LEVAD_PID"
        j=0
        until curl -fsS "http://$ADDR/healthz" | grep -q "\"generation\":$((i + 1))"; do
            j=$((j + 1))
            if [ "$j" -gt 100 ]; then
                echo "quant reload $i never completed" >&2
                cat "$SMOKE/levad_quant.log" >&2
                exit 1
            fi
            sleep 0.1
        done
    done
    MAPS_AFTER=$(grep -c 'bundle_quant' "/proc/$LEVAD_PID/maps" || true)
    if [ "$MAPS_BEFORE" != "$MAPS_AFTER" ]; then
        echo "mmap leak: $MAPS_BEFORE bundle mappings before reloads, $MAPS_AFTER after" >&2
        grep 'bundle_quant' "/proc/$LEVAD_PID/maps" >&2 || true
        exit 1
    fi
    # Quantized serving still healthy after the reload storm.
    curl -fsS "http://$ADDR/healthz" | grep -q '"quantized":true'
    curl -fsS "http://$ADDR/v1/neighbors?token=expenses:0&k=5" \
        | grep -q '"neighbors"'
fi

kill -TERM "$LEVAD_PID"
wait "$LEVAD_PID"

echo "int8 quantization smoke test passed"
