#!/bin/sh
# Full verification gate: build, vet, race-checked tests, and an HTTP
# smoke test of the levad serving daemon end to end (generate data,
# build a bundle, serve it, featurize over the wire, drain on SIGTERM).
# The race run is slow (the experiment suites re-run under -race);
# expect several minutes on a small machine.
set -eux
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

# --- levad smoke test -------------------------------------------------
# Exercises the real binaries, not the in-process test harness: a
# levagen-generated dataset goes through `leva embed -bundle`, levad
# serves the bundle on an ephemeral port, and curl drives the API.
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT

go build -o "$SMOKE/bin/" ./cmd/leva ./cmd/levad ./cmd/levagen

"$SMOKE/bin/levagen" -dataset student -scale 0.05 -seed 7 -out "$SMOKE/csv"
"$SMOKE/bin/leva" embed -data "$SMOKE/csv" -dim 8 -seed 7 \
    -out "$SMOKE/embedding.tsv" -bundle "$SMOKE/bundle"

"$SMOKE/bin/levad" -bundle "$SMOKE/bundle" -addr 127.0.0.1:0 \
    -ready-file "$SMOKE/addr" 2>"$SMOKE/levad.log" &
LEVAD_PID=$!

# Wait for the daemon to publish its bound address.
i=0
while [ ! -s "$SMOKE/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "levad never became ready" >&2
        cat "$SMOKE/levad.log" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$SMOKE/addr")

curl -fsS "http://$ADDR/healthz"
curl -fsS -X POST "http://$ADDR/v1/featurize" \
    -H 'Content-Type: application/json' \
    -d '{"table":"expenses","rows":[{"name":"student_00001","gender":"female","school_name":"school_1"}],"exclude":["total_expenses"]}' \
    | grep -q '"features"'
curl -fsS "http://$ADDR/metrics" | grep -q '"requests"'

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$LEVAD_PID"
wait "$LEVAD_PID"

echo "levad smoke test passed"
