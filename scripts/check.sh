#!/bin/sh
# Full verification gate: build, vet, race-checked tests.
# The race run is slow (the experiment suites re-run under -race);
# expect several minutes on a small machine.
set -eux
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
